(* Command-line interface to the nanodec design flow.

   Subcommands:
   - evaluate   evaluate one decoder design and print the full report
   - sweep      sweep code families x lengths, print the table and winner
   - codes      print a code family's word sequence and transition spectrum
   - trace      print the fabrication trace (litho/doping passes) of a cave
   - figures    print the reproduction data of the paper's figures
   - headlines  print the paper's headline numbers, measured vs reported
   - check      run the property-based paper-proposition oracles *)

open Cmdliner
open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt
open Nanodec
module E = Nanodec_error
module Fault = Nanodec_fault.Fault

(* --- the one error boundary ---

   Every subcommand body runs inside [handle]: failures classified by
   [Errors.classify] (taxonomy errors, exhausted code searches, escaped
   injected faults, [Invalid_argument]/[Failure]) are rendered once, in
   one format, and exit with the taxonomy's stable per-kind code
   (invalid-input 2, timeout 3, worker-crash 4, degraded 5,
   internal 70).  Unclassifiable exceptions keep their backtrace and
   crash loudly — those are bugs, not user errors. *)

let handle f =
  try Errors.guard f with
  | E.Error t ->
    Format.eprintf "nanodec: %a@." E.pp t;
    exit (E.exit_code t)

(* --- shared argument parsers --- *)

let code_type_conv =
  let parse s =
    match Codebook.of_name s with
    | Some ct -> Ok ct
    | None ->
      Error (`Msg (Printf.sprintf "unknown code type %S (TC|GC|BGC|HC|AHC)" s))
  in
  Arg.conv (parse, Codebook.pp)

let code_type_arg =
  let doc = "Code family: TC, GC, BGC, HC or AHC." in
  Arg.(value & opt code_type_conv Codebook.Balanced_gray
       & info [ "c"; "code" ] ~docv:"CODE" ~doc)

let length_arg =
  let doc = "Code length M (doping regions per nanowire)." in
  Arg.(value & opt int 10 & info [ "m"; "length" ] ~docv:"M" ~doc)

let radix_arg =
  let doc = "Logic valence n (2 = binary, 3 = ternary, ...)." in
  Arg.(value & opt int 2 & info [ "n"; "radix" ] ~docv:"N" ~doc)

let wires_arg =
  let doc = "Nanowires per half cave." in
  Arg.(value & opt int 20 & info [ "w"; "wires" ] ~docv:"WIRES" ~doc)

let raw_bits_arg =
  let doc = "Raw crossbar density in crosspoints (default 16 kB = 131072)." in
  Arg.(value & opt int (16 * 1024 * 8) & info [ "raw-bits" ] ~docv:"BITS" ~doc)

let count_arg =
  let doc = "Number of code words to print." in
  Arg.(value & opt int 16 & info [ "k"; "count" ] ~docv:"COUNT" ~doc)

let setup_logging verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Enable debug logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let domains_arg =
  let doc =
    "Domains (OS-level parallelism) to evaluate with.  Defaults to \
     $(b,NANODEC_DOMAINS), then to the machine's recommended domain \
     count.  Results are bit-for-bit identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

module Telemetry = Nanodec_telemetry.Telemetry
module Run_ctx = Nanodec_parallel.Run_ctx

(* --- execution-context flags ---

   The one place the CLI's execution knobs live: a subcommand that does
   heavy work composes [Ctx_flags.term] and gets --domains, --seed,
   --mc-samples, --telemetry and --profile in one line, and
   [Ctx_flags.with_ctx] turns the parsed record into a [Run_ctx.t]
   (pool spawned, sink attached when requested), runs the command body,
   and only after the pool has joined — as the sink contract requires —
   writes the JSON export and prints the stderr profile.  Every flag is
   wall-clock/observability only except --seed and --mc-samples, which
   the context carries explicitly; stdout is bit-for-bit identical with
   and without --telemetry/--profile at every domain count. *)

module Ctx_flags = struct
  type t = {
    domains : int option;
    seed : int;
    mc_samples : int option;  (* None = Monte-Carlo check disabled *)
    telemetry : string option;
    profile : bool;
    fault_plan : string option;
    timeout : float option;
    no_degrade : bool;
    chunks : string;
    mc_method : string;
    rel_error : float option;
  }

  let term =
    let make domains seed mc_samples telemetry profile fault_plan timeout
        no_degrade chunks mc_method rel_error =
      {
        domains;
        seed;
        mc_samples;
        telemetry;
        profile;
        fault_plan;
        timeout;
        no_degrade;
        chunks;
        mc_method;
        rel_error;
      }
    in
    let seed_arg =
      let doc = "Monte-Carlo noise seed." in
      Arg.(value & opt int Run_ctx.default_seed
           & info [ "seed" ] ~docv:"SEED" ~doc)
    in
    let mc_samples_arg =
      let doc =
        "Monte-Carlo noise draws, where the command uses them (omit to \
         disable; estimates need at least 2).  The estimate runs on the \
         $(b,--domains) pool and is bit-for-bit independent of the \
         domain count."
      in
      Arg.(value & opt (some int) None
           & info [ "mc-samples" ] ~docv:"SAMPLES" ~doc)
    in
    let telemetry_arg =
      let doc =
        "Write the run's telemetry (span trees, counters, latency \
         histograms) to this JSON file."
      in
      Arg.(value & opt (some string) None
           & info [ "telemetry" ] ~docv:"FILE" ~doc)
    in
    let profile_arg =
      let doc =
        "Print a human-readable profile (spans by name with %-of-wall, \
         counters, histograms) to stderr after the run."
      in
      Arg.(value & flag & info [ "profile" ] ~doc)
    in
    let fault_plan_arg =
      let doc =
        "Deterministic fault-injection plan (chaos testing), e.g. \
         $(b,seed=7;pool.chunk:crash:p=0.05;mc.sample_batch:delay=2ms).  \
         Overrides $(b,NANODEC_FAULT_PLAN).  Successful runs stay \
         bit-for-bit identical to uninjected ones."
      in
      Arg.(value & opt (some string) None
           & info [ "fault-plan" ] ~docv:"PLAN" ~doc)
    in
    let timeout_arg =
      let doc =
        "Deadline in seconds for each parallel fan-out; on expiry the \
         command fails with the timeout exit code (3)."
      in
      Arg.(value & opt (some float) None
           & info [ "timeout" ] ~docv:"SECONDS" ~doc)
    in
    let no_degrade_arg =
      let doc =
        "Fail (exit code 5) instead of degrading to sequential \
         execution when injected faults exhaust the pool's retries."
      in
      Arg.(value & flag & info [ "no-degrade" ] ~doc)
    in
    let chunks_arg =
      let doc =
        "Monte-Carlo scheduling chunks: $(b,auto) (default) sizes chunks \
         and batches from the measured per-sample cost, $(b,N) forces \
         exactly N chunks.  Pure scheduling — estimates are bit-for-bit \
         identical either way."
      in
      Arg.(value & opt string "auto" & info [ "chunks" ] ~docv:"auto|N" ~doc)
    in
    let mc_method_arg =
      let doc =
        "Monte-Carlo sampling strategy: $(b,plain) (default), \
         $(b,antithetic), $(b,stratified)[:STRATA] or \
         $(b,importance)[:SHIFT].  Every strategy is an equally \
         unbiased estimator of the same yield; the variance-reduced \
         ones reach a given confidence interval in far fewer samples \
         on high-yield designs (see $(b,bench --mc))."
      in
      Arg.(value & opt string "plain"
           & info [ "mc-method" ] ~docv:"METHOD" ~doc)
    in
    let rel_error_arg =
      let doc =
        "Adaptive stopping: keep doubling the sample count (capped at \
         $(b,--mc-samples)) until the 95% confidence half-width falls \
         below REL times the estimate.  Must lie in (0, 0.5].  \
         Deterministic: the sample schedule depends only on the bounds, \
         so results stay bit-for-bit reproducible at every domain \
         count."
      in
      Arg.(value & opt (some float) None
           & info [ "rel-error" ] ~docv:"REL" ~doc)
    in
    Term.(const make $ domains_arg $ seed_arg $ mc_samples_arg
          $ telemetry_arg $ profile_arg $ fault_plan_arg $ timeout_arg
          $ no_degrade_arg $ chunks_arg $ mc_method_arg $ rel_error_arg)

  (* One range check per numeric knob, shared by every subcommand and
     — through the [Nanodec_error] validators — with the serve
     protocol, so both surfaces reject bad values identically. *)
  let validate flags =
    Option.iter
      (fun d ->
        E.check_int_range ~what:"--domains" ~min:1 ~max:64
          ~hint:"the pool caps at 64 domains" d)
      flags.domains;
    E.check_seed ~what:"--seed" flags.seed;
    Option.iter (E.check_mc_samples ~what:"--mc-samples") flags.mc_samples;
    Option.iter (E.check_timeout_s ~what:"--timeout") flags.timeout;
    ignore (E.parse_mc_method ~what:"--mc-method" flags.mc_method);
    Option.iter (E.check_rel_error ~what:"--rel-error") flags.rel_error

  let chunking_of_flags flags =
    match E.parse_chunks ~what:"--chunks" flags.chunks with
    | `Auto -> Run_ctx.Auto
    | `Fixed n -> Run_ctx.Fixed n

  let mc_method_of_flags flags =
    match E.parse_mc_method ~what:"--mc-method" flags.mc_method with
    | `Plain -> Run_ctx.Plain
    | `Antithetic -> Run_ctx.Antithetic
    | `Stratified k -> Run_ctx.Stratified k
    | `Importance f -> Run_ctx.Importance f

  (* [want_pool = false] keeps cheap closed-form commands from spawning
     domains they would never use; telemetry still works. *)
  let with_ctx ?(want_pool = true) flags f =
    validate flags;
    let chunking = chunking_of_flags flags in
    let sink =
      if flags.telemetry <> None || flags.profile then
        Some (Telemetry.create ())
      else None
    in
    (* --fault-plan beats the environment; either way the engine is
       built here so the [telemetry.flush] site below can probe it
       after the context is gone. *)
    let fault =
      match flags.fault_plan with
      | Some spec -> Some (Fault.create (Fault.parse_exn spec))
      | None -> Fault.of_env ()
    in
    let domains =
      if want_pool then
        Some
          (match flags.domains with
          | Some n -> n
          | None -> Nanodec_parallel.Pool.default_domains ())
      else None
    in
    let result =
      Run_ctx.with_ctx ?domains ~seed:flags.seed
        ~mc_samples:(Option.value flags.mc_samples ~default:0)
        ?telemetry:sink ?fault ?timeout_s:flags.timeout ~chunking
        ~mc_method:(mc_method_of_flags flags) ?rel_error:flags.rel_error
        ~degrade:(not flags.no_degrade) f
    in
    Option.iter
      (fun sink ->
        Fault.hit fault "telemetry.flush";
        Option.iter
          (fun path -> Telemetry.write_json sink ~path)
          flags.telemetry;
        if flags.profile then Format.eprintf "%a@." Telemetry.pp_summary sink)
      sink;
    result
end

let make_spec code_type code_length radix n_wires raw_bits =
  (* Same ranges as the serve protocol's [params] validation. *)
  E.check_int_range ~what:"--length" ~min:1 ~max:64 code_length;
  E.check_int_range ~what:"--radix" ~min:2 ~max:16 radix;
  E.check_int_range ~what:"--wires" ~min:1 ~max:10_000 n_wires;
  E.check_int_range ~what:"--raw-bits" ~min:1 ~max:1_000_000_000 raw_bits;
  let base = { Design.default_spec with Design.raw_bits } in
  Design.spec ~base ~radix ~n_wires ~code_type ~code_length ()

(* --- evaluate --- *)

let evaluate_cmd =
  let run verbose code_type code_length radix n_wires raw_bits flags =
    handle @@ fun () ->
    setup_logging verbose;
    match
      Codebook.validate_length ~radix ~length:code_length code_type
    with
    | Error msg -> E.fail (E.Invalid_input { what = msg; hint = None })
    | Ok () ->
      (* The pool is only worth spawning for the Monte-Carlo check; the
         closed-form report is sequential either way. *)
      let mc = flags.Ctx_flags.mc_samples <> None in
      Ctx_flags.with_ctx ~want_pool:mc flags @@ fun ctx ->
      let spec = make_spec code_type code_length radix n_wires raw_bits in
      let report = Design.evaluate spec in
      Format.printf "%a@." Design.pp_report report;
      if mc then (
        let analysis = Nanodec_crossbar.Cave.analyze spec.Design.cave in
        let seed = Run_ctx.seed ctx in
        let e =
          Nanodec_crossbar.Cave.mc_yield_window_par ~ctx
            (Rng.create ~seed)
            ~samples:(Run_ctx.mc_samples ctx)
            analysis
        in
        Printf.printf
          "monte-carlo yield check: %.9f +/- %.9f (n=%d, seed %d)\n"
          e.Montecarlo.mean e.Montecarlo.std_error e.Montecarlo.samples
          seed)
  in
  let term =
    Term.(const run $ verbose_arg $ code_type_arg $ length_arg $ radix_arg
          $ wires_arg $ raw_bits_arg $ Ctx_flags.term)
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Evaluate one decoder design (yield, area, Phi, Sigma).")
    term

(* --- sweep --- *)

let objective_conv =
  let parse = function
    | "yield" -> Ok Optimizer.Max_yield
    | "area" -> Ok Optimizer.Min_bit_area
    | "fabrication" -> Ok Optimizer.Min_fabrication
    | "variability" -> Ok Optimizer.Min_variability
    | s -> Error (`Msg (Printf.sprintf "unknown objective %S" s))
  in
  let print ppf o =
    Format.pp_print_string ppf
      (match o with
      | Optimizer.Max_yield -> "yield"
      | Optimizer.Min_bit_area -> "area"
      | Optimizer.Min_fabrication -> "fabrication"
      | Optimizer.Min_variability -> "variability")
  in
  Arg.conv (parse, print)

let sweep_cmd =
  let run verbose objective radix n_wires raw_bits flags =
    handle @@ fun () ->
    setup_logging verbose;
    let spec =
      Design.spec
        ~base:{ Design.default_spec with Design.raw_bits }
        ~radix ~n_wires ~code_type:Codebook.Balanced_gray ~code_length:10 ()
    in
    Ctx_flags.with_ctx flags (fun ctx ->
        let reports = Optimizer.sweep ~ctx ~spec () in
        print_endline Design.report_header;
        List.iter (fun r -> print_endline (Design.report_row r)) reports;
        let winner = Optimizer.best ~ctx ~spec objective in
        Format.printf "@.winner:@.%a@." Design.pp_report winner;
        print_endline "\npareto front (yield vs bit area):";
        List.iter
          (fun r -> print_endline ("  " ^ Design.report_row r))
          (Optimizer.pareto_yield_area reports))
  in
  let objective_arg =
    let doc = "Objective: yield, area, fabrication or variability." in
    Arg.(value & opt objective_conv Optimizer.Min_bit_area
         & info [ "o"; "objective" ] ~docv:"OBJ" ~doc)
  in
  let term =
    Term.(const run $ verbose_arg $ objective_arg $ radix_arg $ wires_arg
          $ raw_bits_arg $ Ctx_flags.term)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep the design space and pick the best decoder.")
    term

(* --- codes --- *)

let codes_cmd =
  let run code_type code_length radix count =
    handle @@ fun () ->
    E.check_int_range ~what:"--count" ~min:1 ~max:1_000_000 count;
    match Codebook.validate_length ~radix ~length:code_length code_type with
    | Error msg -> E.fail (E.Invalid_input { what = msg; hint = None })
    | Ok () ->
      let omega = Codebook.space_size ~radix ~length:code_length code_type in
      Printf.printf "%s, n=%d, M=%d: %d code words\n"
        (Codebook.long_name code_type) radix code_length omega;
      let words =
        Codebook.sequence ~radix ~length:code_length ~count code_type
      in
      List.iteri
        (fun i w ->
          let transitions =
            if i = 0 then ""
            else
              Printf.sprintf "  (%d transitions)"
                (Word.hamming_distance (List.nth words (i - 1)) w)
          in
          Printf.printf "%3d  %s%s\n" i (Word.to_string w) transitions)
        words;
      let spectrum = Balanced_gray.transition_spectrum ~cyclic:false words in
      print_string "transition spectrum per digit:";
      Array.iter (Printf.printf " %d") spectrum;
      print_newline ()
  in
  let term =
    Term.(const run $ code_type_arg $ length_arg $ radix_arg $ count_arg)
  in
  Cmd.v
    (Cmd.info "codes" ~doc:"Print a code family's word sequence and spectrum.")
    term

(* --- trace --- *)

let trace_cmd =
  let run code_type code_length radix n_wires =
    handle @@ fun () ->
    match Codebook.validate_length ~radix ~length:code_length code_type with
    | Error msg -> E.fail (E.Invalid_input { what = msg; hint = None })
    | Ok () ->
      let pattern =
        Pattern.of_codebook ~radix ~length:code_length ~n_wires code_type
      in
      let levels =
        Nanodec_physics.Vt_levels.make ~radix ()
      in
      let h d = Nanodec_physics.Vt_levels.doping_of_digit levels d /. 1e18 in
      let d, s = Doping.of_pattern ~h pattern in
      Format.printf "pattern matrix P:@.%a@." Pattern.pp pattern;
      Format.printf "final doping D [1e18 cm^-3]:@.%a@." Fmatrix.pp
        (Fmatrix.map (fun x -> Float.round (x *. 100.) /. 100.) d);
      Format.printf "step doping S [1e18 cm^-3]:@.%a@." Fmatrix.pp
        (Fmatrix.map (fun x -> Float.round (x *. 100.) /. 100.) s);
      let passes = Process.passes_of_step_matrix s in
      Printf.printf "fabrication: Phi = %d lithography/doping passes\n"
        (List.length passes);
      List.iteri
        (fun i pass ->
          let regions =
            String.concat ","
              (List.filteri
                 (fun j _ -> pass.Process.mask.(j))
                 (List.init code_length string_of_int))
          in
          Printf.printf
            "  pass %2d: after wire %d, dose %+.2f e18 on regions {%s}\n"
            (i + 1) pass.Process.after_wire pass.Process.dose regions)
        passes;
      Format.printf "variability nu:@.%a@." Imatrix.pp
        (Variability.nu_matrix pattern);
      Printf.printf "||Sigma||_1 = %.1f sigma_T^2\n"
        (float_of_int (Imatrix.sum (Variability.nu_matrix pattern)));
      let estimate = Cost_model.of_pattern ~h pattern in
      Format.printf "fab economics: %a@." Cost_model.pp estimate;
      (match Feasibility.check (Fmatrix.scale 1e18 s) with
      | Ok () -> print_endline "dose plan: feasible within default limits"
      | Error violations ->
        Printf.printf "dose plan: %d violations\n" (List.length violations);
        List.iter
          (fun violation ->
            Format.printf "  %a@." Feasibility.pp_violation violation)
          violations)
  in
  let wires_small =
    let doc = "Nanowires in the traced half cave." in
    Arg.(value & opt int 4 & info [ "w"; "wires" ] ~docv:"WIRES" ~doc)
  in
  let term =
    Term.(const run $ code_type_arg $ length_arg $ radix_arg $ wires_small)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the full fabrication trace (P, D, S, passes, Sigma).")
    term

(* --- figures / headlines --- *)

let figures_cmd =
  let run which flags =
    handle @@ fun () ->
    (* fig5/fig6 are closed-form and cheap; the design-evaluation grids
       (fig7, fig8, multivalued) fan out across the pool. *)
    let pooled =
      match which with
      | "fig7" | "fig8" | "multivalued" -> true
      | _ -> false
    in
    Ctx_flags.with_ctx ~want_pool:pooled flags @@ fun ctx ->
    match which with
    | "fig5" ->
      List.iter
        (fun (p : Figures.fig5_point) ->
          Printf.printf "n=%d %s M=%d Phi=%d\n" p.radix
            (Codebook.name p.code_type) p.code_length p.phi)
        (Figures.fig5 ())
    | "fig6" ->
      List.iter
        (fun (s : Figures.fig6_surface) ->
          Printf.printf "%s L=%d mean_nu=%.2f max_std=%.2f\n"
            (Codebook.name s.code_type) s.code_length s.mean_nu s.max_std)
        (Figures.fig6 ())
    | "fig7" ->
      List.iter
        (fun (p : Figures.fig7_point) ->
          Printf.printf "%s M=%d yield=%.3f\n" (Codebook.name p.code_type)
            p.code_length p.crossbar_yield)
        (Figures.fig7 ~ctx ())
    | "fig8" ->
      List.iter
        (fun (p : Figures.fig8_point) ->
          Printf.printf "%s M=%d bit_area=%.1f\n" (Codebook.name p.code_type)
            p.code_length p.bit_area)
        (Figures.fig8 ~ctx ())
    | "multivalued" ->
      List.iter
        (fun (p : Figures.multivalued_point) ->
          Printf.printf "n=%d %s M=%d Phi=%d yield=%.4f bit_area=%.1f\n"
            p.radix (Codebook.name p.code_type) p.code_length p.phi
            p.crossbar_yield p.bit_area)
        (Figures.multivalued_designs ~ctx ())
    | s ->
      E.invalid_inputf ~hint:"valid figures: fig5, fig6, fig7, fig8, multivalued"
        "unknown figure %S" s
  in
  let which_arg =
    let doc = "Which figure: fig5, fig6, fig7, fig8 or multivalued." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Print one figure's reproduction data.")
    Term.(const run $ which_arg $ Ctx_flags.term)

let headlines_cmd =
  let run () = Format.printf "%a@." Figures.pp_headlines (Figures.headlines ()) in
  Cmd.v
    (Cmd.info "headlines"
       ~doc:"Print the paper's headline numbers, measured vs reported.")
    Term.(const run $ const ())

(* --- export --- *)

let export_cmd =
  let run dir =
    handle @@ fun () ->
    Export.write_all ~dir;
    Printf.printf
      "wrote fig5..fig8 + sweep CSVs and fig5/fig7/fig8 gnuplot scripts to %s/\n"
      dir
  in
  let dir_arg =
    let doc = "Output directory for CSV files." in
    Arg.(value & opt string "results" & info [ "d"; "dir" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export every reproduction dataset as CSV.")
    Term.(const run $ dir_arg)

(* --- ablate --- *)

let ablate_cmd =
  let run flags =
    handle @@ fun () ->
    Ctx_flags.with_ctx flags (fun ctx ->
        List.iter
          (fun series -> Format.printf "%a@.@." Ablation.pp series)
          (Ablation.all ~ctx ()))
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Sweep platform parameters and check the BGC-beats-TC conclusion.")
    Term.(const run $ Ctx_flags.term)

(* --- baseline --- *)

let baseline_cmd =
  let run omega group_size =
    handle @@ fun () ->
    let a = Nanodec_crossbar.Stochastic.analyze ~omega ~group_size in
    Format.printf "%a@." Nanodec_crossbar.Stochastic.pp a;
    Printf.printf "stochastic loss vs deterministic MSPT: %.1f%%\n"
      (100. *. Nanodec_crossbar.Stochastic.stochastic_loss ~omega ~group_size)
  in
  let omega_arg =
    let doc = "Code space size." in
    Arg.(value & opt int 16 & info [ "omega" ] ~docv:"OMEGA" ~doc)
  in
  let group_arg =
    let doc = "Wires per contact group." in
    Arg.(value & opt int 16 & info [ "g"; "group" ] ~docv:"G" ~doc)
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Compare against the stochastic-assembly decoder baseline.")
    Term.(const run $ omega_arg $ group_arg)

(* --- memory --- *)

let memory_cmd =
  let run code_type code_length raw_bits seed =
    handle @@ fun () ->
    E.check_seed ~what:"--seed" seed;
    E.check_int_range ~what:"--raw-bits" ~min:1 ~max:1_000_000_000 raw_bits;
    match Codebook.validate_length ~radix:2 ~length:code_length code_type with
    | Error msg -> E.fail (E.Invalid_input { what = msg; hint = None })
    | Ok () ->
      let cave =
        { Nanodec_crossbar.Cave.default_config with
          Nanodec_crossbar.Cave.code_type; code_length }
      in
      let config = { Nanodec_crossbar.Array_sim.cave; raw_bits } in
      let memory =
        Nanodec_crossbar.Memory.create (Rng.create ~seed) config
      in
      let remap = Nanodec_crossbar.Remap.build memory in
      Printf.printf
        "sampled crossbar: %dx%d, %d usable crosspoints (%.1f%% yield)\n"
        (Nanodec_crossbar.Memory.n_rows memory)
        (Nanodec_crossbar.Memory.n_cols memory)
        (Nanodec_crossbar.Memory.usable_crosspoints memory)
        (100. *. Nanodec_crossbar.Memory.realized_yield memory);
      Printf.printf "logical capacity: %d bytes (%d bytes under SECDED)\n"
        (Nanodec_crossbar.Remap.capacity_bytes remap)
        (Nanodec_crossbar.Ecc.protected_capacity_bytes remap);
      let payload = "nanodec memory self-test" in
      Nanodec_crossbar.Ecc.store remap payload;
      let data, corrected, uncorrectable =
        Nanodec_crossbar.Ecc.load remap ~length:(String.length payload)
      in
      Printf.printf
        "ECC round trip: %s (corrected %d, uncorrectable %d)\n"
        (if String.equal data payload then "ok" else "CORRUPT")
        corrected uncorrectable
  in
  let seed_arg =
    let doc = "Defect-map sampling seed." in
    Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let term =
    Term.(const run $ code_type_arg $ length_arg $ raw_bits_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "memory"
       ~doc:"Sample a defective crossbar memory and self-test the remap/ECC stack.")
    term

(* --- check --- *)

let check_cmd =
  let run seed count names_only =
    handle @@ fun () ->
    Option.iter (E.check_seed ~what:"--seed") seed;
    Option.iter
      (fun c -> E.check_int_range ~what:"--count" ~min:1 ~max:1_000_000 c)
      count;
    let open Nanodec_proptest in
    if names_only then (
      List.iter (fun p -> print_endline (Property.name p)) Oracles.all;
      exit 0);
    let reports = Property.run_suite ?seed ?count Oracles.all in
    List.iter (fun r -> Format.printf "%a@." Property.pp_report r) reports;
    let failures =
      List.filter
        (fun r ->
          match r.Property.outcome with
          | Property.Fail _ -> true
          | Property.Pass _ -> false)
        reports
    in
    if failures = [] then
      Printf.printf "check: all %d properties passed (seed %d)\n"
        (List.length reports)
        (Property.effective_seed seed)
    else (
      Printf.printf "check: %d of %d properties FAILED\n" (List.length failures)
        (List.length reports);
      exit 1)
  in
  let seed_arg =
    let doc =
      "Master seed for the property run (also readable from \
       $(b,PROPTEST_SEED)).  Failing cases print the exact seed that \
       reproduces them."
    in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let count_arg =
    let doc = "Random cases per property (default 100, or $(b,PROPTEST_COUNT))." in
    Arg.(value & opt (some int) None & info [ "count" ] ~docv:"COUNT" ~doc)
  in
  let list_arg =
    let doc = "Only list the property names, without running them." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the paper-proposition oracles as a correctness gate.")
    Term.(const run $ seed_arg $ count_arg $ list_arg)

(* --- serve / client --- *)

module Serve = Nanodec_serve

let address_of ~socket ~port =
  match (socket, port) with
  | Some path, None -> `Unix path
  | None, Some p -> `Tcp p
  | Some _, Some _ ->
    E.invalid_inputf "--socket and --port are mutually exclusive"
  | None, None ->
    E.invalid_inputf ~hint:"e.g. --socket /tmp/nanodec.sock or --port 7209"
      "serve needs --socket PATH or --port N"

let socket_arg =
  let doc = "Unix-domain socket path to listen on / connect to." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Loopback TCP port to listen on / connect to (0 = any free)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let run verbose socket port cache_capacity no_cache max_inflight max_queue
      batch_window_ms max_batch idle_timeout cache_file snapshot_interval
      flags =
    handle @@ fun () ->
    setup_logging verbose;
    let address = address_of ~socket ~port in
    E.check_int_range ~what:"--cache-capacity" ~min:1 ~max:1_000_000
      ~hint:"use --no-cache to disable caching instead" cache_capacity;
    E.check_int_range ~what:"--max-inflight" ~min:1 ~max:1024 max_inflight;
    E.check_int_range ~what:"--max-queue" ~min:1 ~max:1_000_000 max_queue;
    if not (batch_window_ms >= 0. && batch_window_ms < infinity) then
      E.invalid_inputf ~hint:"0 turns batch fusion off"
        "--batch-window-ms must be a finite time >= 0 (got %g)"
        batch_window_ms;
    E.check_int_range ~what:"--max-batch" ~min:2 ~max:4096 max_batch;
    Option.iter (E.check_timeout_s ~what:"--idle-timeout") idle_timeout;
    E.check_timeout_s ~what:"--snapshot-interval" snapshot_interval;
    Ctx_flags.with_ctx flags @@ fun ctx ->
    let state =
      Serve.Protocol.make_state ~cache_enabled:(not no_cache)
        ~cache_capacity ~base:ctx ()
    in
    let server =
      Serve.Server.create ~state ~max_inflight ~max_queue
        ~batch_window_s:(batch_window_ms /. 1000.) ~max_batch
        ?idle_timeout_s:idle_timeout ?cache_file
        ~snapshot_interval_s:snapshot_interval address
    in
    (match Serve.Server.address server with
    | `Unix path -> Format.eprintf "nanodec serve: listening on %s@." path
    | `Tcp p -> Format.eprintf "nanodec serve: listening on 127.0.0.1:%d@." p);
    Serve.Server.serve server
  in
  let cache_capacity_arg =
    let doc = "Artifact-cache capacity (entries, across all kinds)." in
    Arg.(value & opt int 256 & info [ "cache-capacity" ] ~docv:"N" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the artifact cache: every request executes cold." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let max_inflight_arg =
    let doc = "Worker threads executing requests concurrently." in
    Arg.(value
         & opt int Serve.Server.default_max_inflight
         & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Requests allowed to wait beyond the workers; excess load is \
       shed with structured $(i,overloaded) errors (exit code 6 \
       semantics on the wire)."
    in
    Arg.(value
         & opt int Serve.Server.default_max_queue
         & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let batch_window_ms_arg =
    let doc =
      "Coalesce concurrent cold Monte-Carlo requests for up to MS \
       milliseconds and execute each batch as one fused kernel \
       mega-run (responses stay byte-identical to unbatched \
       execution; serial clients never wait — a lone request flushes \
       immediately).  0 disables batch fusion."
    in
    Arg.(value & opt float 2.0 & info [ "batch-window-ms" ] ~docv:"MS" ~doc)
  in
  let max_batch_arg =
    let doc = "Most requests fused into one batch (flushes when full)." in
    Arg.(value & opt int 32 & info [ "max-batch" ] ~docv:"N" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Close connections idle (or drip-feeding one request line) for \
       more than SECONDS.  Off by default."
    in
    Arg.(value
         & opt (some float) None
         & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let cache_file_arg =
    let doc =
      "Persist the artifact cache to PATH (checksummed snapshots, \
       atomic replace): restored on startup, written every \
       $(b,--snapshot-interval) seconds and on graceful shutdown, so \
       warm-cache hits survive restarts and crashes.  A corrupt \
       snapshot is ignored with a warning."
    in
    Arg.(value
         & opt (some string) None
         & info [ "cache-file" ] ~docv:"PATH" ~doc)
  in
  let snapshot_interval_arg =
    let doc = "Seconds between cache snapshots (with --cache-file)." in
    Arg.(value
         & opt float 5.0
         & info [ "snapshot-interval" ] ~docv:"SECONDS" ~doc)
  in
  let term =
    Term.(const run $ verbose_arg $ socket_arg $ port_arg $ cache_capacity_arg
          $ no_cache_arg $ max_inflight_arg $ max_queue_arg
          $ batch_window_ms_arg $ max_batch_arg
          $ idle_timeout_arg $ cache_file_arg $ snapshot_interval_arg
          $ Ctx_flags.term)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the cached design-evaluation daemon (JSON lines over a socket).")
    term

let client_cmd =
  let run socket port timeout requests =
    handle @@ fun () ->
    let address = address_of ~socket ~port in
    Option.iter (E.check_timeout_s ~what:"--timeout") timeout;
    Serve.Client.with_connection ?timeout_s:timeout address @@ fun conn ->
    let send line =
      if String.trim line <> "" then
        print_endline (Serve.Client.request conn line)
    in
    if requests <> [] then List.iter send requests
    else
      try
        while true do
          send (input_line stdin)
        done
      with End_of_file -> ()
  in
  let requests_arg =
    let doc =
      "Request lines to send (one JSON object each).  Without any, \
       requests are read from stdin, one per line."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST" ~doc)
  in
  let timeout_arg =
    let doc =
      "Give up on connecting or on an unfinished response after \
       SECONDS (exit code 3).  Without it, a wedged daemon blocks \
       forever."
    in
    Arg.(value
         & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running serve daemon and print the responses.")
    Term.(const run $ socket_arg $ port_arg $ timeout_arg $ requests_arg)

let main_cmd =
  let doc = "MSPT nanowire-decoder design flow (DAC 2009 reproduction)." in
  Cmd.group
    (Cmd.info "nanodec" ~version:"1.0.0" ~doc)
    [ evaluate_cmd; sweep_cmd; codes_cmd; trace_cmd; figures_cmd; headlines_cmd;
      export_cmd; ablate_cmd; baseline_cmd; memory_cmd; check_cmd; serve_cmd;
      client_cmd ]

let () = exit (Cmd.eval main_cmd)
