(* Benchmark and reproduction harness.

   For every figure of the paper's evaluation section this executable
   (1) prints the data series the figure reports — the reproduction — and
   (2) times the computation that generates it with Bechamel, one
   Test.make per figure, all in this one executable.

   Run with [dune exec bench/main.exe]. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --- Fig. 5: fabrication complexity --- *)

let print_fig5 () =
  section "FIG 5 — fabrication complexity (extra litho/doping steps), N = 10";
  Printf.printf "%-12s %-6s %-4s %s\n" "logic" "code" "M" "Phi";
  List.iter
    (fun (p : Figures.fig5_point) ->
      let logic =
        match p.radix with
        | 2 -> "binary"
        | 3 -> "ternary"
        | 4 -> "quaternary"
        | n -> string_of_int n ^ "-ary"
      in
      Printf.printf "%-12s %-6s %-4d %d\n" logic
        (Codebook.name p.code_type)
        p.code_length p.phi)
    (Figures.fig5 ());
  print_endline
    "paper: binary flat at 2N = 20; ternary/quaternary TC above; GC \
     cancels most of the multi-valued overhead (17% saving)"

(* --- Fig. 6: variability maps --- *)

let print_fig6 () =
  section
    "FIG 6 — sqrt(Sigma)/sigma_T per (nanowire, digit), binary codes, N = 20";
  List.iter
    (fun (s : Figures.fig6_surface) ->
      Printf.printf "\n%s (L=%d): mean nu = %.2f, max sqrt(nu) = %.2f\n"
        (Codebook.name s.code_type)
        s.code_length s.mean_nu s.max_std;
      let m = s.normalized_std in
      Printf.printf "%-5s" "wire";
      for j = 0 to Fmatrix.cols m - 1 do
        Printf.printf " d%-4d" (j + 1)
      done;
      print_newline ();
      for i = 0 to Fmatrix.rows m - 1 do
        Printf.printf "%-5d" (i + 1);
        for j = 0 to Fmatrix.cols m - 1 do
          Printf.printf " %-5.2f" (Fmatrix.get m i j)
        done;
        print_newline ()
      done)
    (Figures.fig6 ());
  print_endline
    "\npaper: TC peaks at sqrt(20) ~ 4.5 on early wires / low digits; BGC \
     flattens the map; longer codes lower the average (-18%)"

(* --- Fig. 7: crossbar yield --- *)

let print_fig7 () =
  section "FIG 7 — crossbar yield (fraction of addressable crosspoints)";
  Printf.printf "%-6s %-4s %s\n" "code" "M" "yield";
  List.iter
    (fun (p : Figures.fig7_point) ->
      Printf.printf "%-6s %-4d %.1f%%\n"
        (Codebook.name p.code_type)
        p.code_length
        (100. *. p.crossbar_yield))
    (Figures.fig7 ());
  print_endline
    "paper: yield rises with M to a maximum near M~10 (TC/BGC) and M~6 \
     (HC); BGC ~42% over TC at M=8; AHC ~19% over HC at M=8; ~40 points \
     from TC M=6 to M=10"

(* --- Fig. 8: bit area --- *)

let print_fig8 () =
  section "FIG 8 — average area per functional bit [nm^2]";
  let fig8_points = Figures.fig8 () in
  Printf.printf "%-6s %-6s %-6s %-6s\n" "code" "M=6" "M=8" "M=10";
  List.iter
    (fun ct ->
      let area m =
        match
          List.find_opt
            (fun (p : Figures.fig8_point) ->
              p.code_type = ct && p.code_length = m)
            fig8_points
        with
        | Some p -> p.Figures.bit_area
        | None -> nan
      in
      Printf.printf "%-6s %-6.0f %-6.0f %-6.0f\n" (Codebook.name ct) (area 6)
        (area 8) (area 10))
    Codebook.all_types;
  print_endline
    "paper: TC -51% from M=6 to 10; BGC ~30% denser than TC at M=8; minima \
     ~169 nm^2 (BGC, M=10) and ~175 nm^2 (AHC, M=6)"

let print_headlines () =
  section "HEADLINE NUMBERS (measured vs paper)";
  Format.printf "%a@." Figures.pp_headlines (Figures.headlines ())

(* --- extension: multi-valued variability (paper, Section 6.2 remark) --- *)

let print_fig6_multivalued () =
  section "FIG 6 EXTENSION — multi-valued logic variability summaries";
  List.iter
    (fun radix ->
      Printf.printf "radix %d:\n" radix;
      List.iter
        (fun (s : Figures.fig6_surface) ->
          Printf.printf "  %-4s M=%-3d mean nu = %.2f  max sqrt(nu) = %.2f\n"
            (Codebook.name s.code_type)
            s.code_length s.mean_nu s.max_std)
        (Figures.fig6_multivalued ~radix ()))
    [ 3; 4 ];
  print_endline
    "paper: 'similar results were obtained for these codes with a higher \
     logic level' — Gray arrangements reduce and flatten nu at every radix"

(* --- extension: multi-valued decoder designs --- *)

let print_multivalued () =
  section "EXTENSION — multi-valued decoder designs (yield and area)";
  Printf.printf "%-6s %-6s %-4s %-5s %-8s %s\n" "logic" "code" "M" "Phi"
    "yield" "bit area";
  List.iter
    (fun (p : Figures.multivalued_point) ->
      Printf.printf "%-6d %-6s %-4d %-5d %-8.3f %.0f\n" p.radix
        (Codebook.name p.code_type)
        p.code_length p.phi p.crossbar_yield p.bit_area)
    (Figures.multivalued_designs ());
  print_endline
    "finding: at the paper's sigma_T = 50 mV (plus intrinsic variability) \
     the shrunken level separation makes ternary/quaternary decoders \
     yield-limited — the area benefit the paper's ref [2] hoped for needs \
     proportionally tighter V_T control; the Gray code still beats the \
     tree code at every radix"

(* --- baseline: stochastic-assembly decoders (paper refs [6], [8]) --- *)

let print_baseline () =
  section "BASELINE — stochastic-assembly decoder vs deterministic MSPT";
  Printf.printf "%-8s %-6s %-22s %-22s %s\n" "Omega" "group" "E[unique wires]"
    "deterministic wires" "stochastic loss";
  List.iter
    (fun (omega, group_size) ->
      let a = Nanodec_crossbar.Stochastic.analyze ~omega ~group_size in
      Printf.printf "%-8d %-6d %-22.2f %-22d %.1f%%\n" omega group_size
        a.Nanodec_crossbar.Stochastic.expected_unique_wires
        a.Nanodec_crossbar.Stochastic.deterministic_unique_wires
        (100. *. Nanodec_crossbar.Stochastic.stochastic_loss ~omega ~group_size))
    [ (8, 8); (16, 16); (32, 20); (70, 20) ];
  print_endline
    "the MSPT decoder's deterministic code assignment (the paper's first \
     novelty) avoids the collision losses inherent to stochastically \
     assembled decoders"

(* --- extension: technology scaling --- *)

let print_scaling () =
  section "EXTENSION — technology scaling (best design per node / size)";
  print_endline "by lithography node:";
  List.iter
    (fun p -> Format.printf "  %a@." Scaling.pp_point p)
    (Scaling.sweep_nodes ());
  print_endline "by raw memory size (32 nm node):";
  List.iter
    (fun p -> Format.printf "  %a@." Scaling.pp_point p)
    (Scaling.sweep_memory_sizes ());
  print_endline
    "finding: the AHC(M=6)/BGC(M=10) near-tie of Fig. 8 is node- and \
     size-dependent — finer lithography or larger arrays amortise the \
     longer code's decoder overhead and hand the optimum to the balanced \
     Gray code"

(* --- ablations: robustness of the BGC-beats-TC conclusion --- *)

let print_ablations () =
  section "ABLATIONS — does BGC > TC survive moving the calibration?";
  List.iter
    (fun series -> Format.printf "%a@.@." Ablation.pp series)
    (Ablation.all ())

(* --- extension: the arrangement optimiser vs the analytic optimum --- *)

let print_arranger () =
  section "EXTENSION — simulated-annealing arrangement vs Gray optimum";
  let rng = Rng.create ~seed:2009 in
  let omega = 16 in
  let shuffled =
    let space =
      Array.of_list (Tree_code.reflected_words ~radix:2 ~base_len:4 ~count:omega)
    in
    Rng.shuffle rng space;
    Array.to_list space
  in
  let gray = Gray_code.reflected_words ~radix:2 ~base_len:4 ~count:omega in
  let annealed = Arranger.optimize (Rng.split rng) `Sigma shuffled in
  let show name words =
    Printf.printf "%-18s transitions %4.0f   sigma-weighted %5.0f\n" name
      (Arranger.cost `Transitions words)
      (Arranger.cost `Sigma words)
  in
  show "random shuffle" shuffled;
  show "annealed" annealed;
  show "Gray (analytic)" gray;
  print_endline
    "the local search recovers (near-)Gray cost from a random order — the \
     optimum of Propositions 4-5 without knowing the Gray construction"

(* --- Bechamel timing: one Test.make per table/figure --- *)

let bechamel_tests =
  let open Bechamel in
  [
    Test.make ~name:"fig5/fabrication-complexity"
      (Staged.stage (fun () -> ignore (Figures.fig5 ())));
    Test.make ~name:"fig6/variability-maps"
      (Staged.stage (fun () -> ignore (Figures.fig6 ())));
    Test.make ~name:"fig7/crossbar-yield"
      (Staged.stage (fun () -> ignore (Figures.fig7 ())));
    Test.make ~name:"fig8/bit-area"
      (Staged.stage (fun () -> ignore (Figures.fig8 ())));
    Test.make ~name:"kernel/balanced-gray-base5"
      (Staged.stage (fun () ->
           ignore (Balanced_gray.words ~radix:2 ~base_len:5 ~count:32)));
    Test.make ~name:"kernel/arranged-hot-M10"
      (Staged.stage (fun () ->
           ignore (Arranged_hot.words ~radix:2 ~length:10 ~count:252)));
    Test.make ~name:"kernel/cave-analysis"
      (Staged.stage (fun () ->
           ignore
             (Nanodec_crossbar.Cave.analyze
                Nanodec_crossbar.Cave.default_config)));
    Test.make ~name:"kernel/design-evaluate"
      (Staged.stage (fun () ->
           ignore
             (Design.evaluate
                (Design.spec ~code_type:Codebook.Balanced_gray ~code_length:10
                   ()))));
    Test.make ~name:"baseline/stochastic-analysis"
      (Staged.stage (fun () ->
           ignore (Nanodec_crossbar.Stochastic.analyze ~omega:70 ~group_size:20)));
    Test.make ~name:"extension/arranger-anneal"
      (Staged.stage
         (let rng = Rng.create ~seed:3 in
          let words =
            Tree_code.reflected_words ~radix:2 ~base_len:4 ~count:16
          in
          fun () ->
            ignore (Arranger.optimize ~steps:2_000 (Rng.split rng) `Sigma words)));
    Test.make ~name:"extension/memory-build-16kB"
      (Staged.stage
         (let rng = Nanodec_numerics.Rng.create ~seed:1 in
          fun () ->
            ignore
              (Nanodec_crossbar.Memory.create rng
                 Nanodec_crossbar.Array_sim.default_config)));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  section "BECHAMEL TIMINGS (OLS time per run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          let time_ns =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> est
            | Some _ | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
          Printf.printf "%-34s %12.0f ns/run   (r^2 %.3f)\n" name time_ns r2)
        ols)
    bechamel_tests

(* --- machine-readable parallel bench: --json [--quick] [--gate-overhead] ---

   Times the headline workloads sequentially and on 2- and 4-domain
   pools, checks that every reproduced value is bit-for-bit identical
   across the three runs AND across a telemetry-instrumented run (the
   determinism gate — any drift fails the process), and writes
   BENCH_parallel.json (now with a per-stage breakdown from the span
   totals and pool counters of the instrumented run) plus
   BENCH_telemetry.json (the full span-tree export per workload) so
   later PRs have both a perf trajectory and a stage profile to regress
   against.  --gate-overhead additionally times the first workload with
   and without a sink and fails if telemetry costs more than 5 %. *)

module Run_ctx = Nanodec_parallel.Run_ctx
module Telemetry = Nanodec_telemetry.Telemetry

type parallel_workload = {
  wname : string;
  detail : string;
  run : ?ctx:Run_ctx.t -> unit -> (string * float) list;
      (* labelled reproduced values; the digest compared across runs *)
}

let parallel_workloads ~quick =
  let mc_samples = if quick then 500 else 4_000 in
  let label ct m = Printf.sprintf "%s-M%d" (Codebook.name ct) m in
  [
    {
      wname = "fig7-mc-yield";
      detail =
        Printf.sprintf
          "Monte-Carlo window yield, %d noise draws x %d designs" mc_samples
          (List.length Figures.fig7_candidates);
      run =
        (fun ?ctx () ->
          List.map
            (fun (ct, m) ->
              let spec = Design.spec ~code_type:ct ~code_length:m () in
              let analysis =
                Nanodec_crossbar.Cave.analyze spec.Design.cave
              in
              let e =
                Nanodec_crossbar.Cave.mc_yield_window_par ?ctx
                  (Rng.create ~seed:2009) ~samples:mc_samples analysis
              in
              (label ct m, e.Montecarlo.mean))
            Figures.fig7_candidates);
    };
    {
      wname = "optimizer-sweep";
      detail = "full code-family x length grid, analytic design flow";
      run =
        (fun ?ctx () ->
          List.map
            (fun (r : Design.report) ->
              let c = r.Design.spec.Design.cave in
              ( label c.Nanodec_crossbar.Cave.code_type
                  c.Nanodec_crossbar.Cave.code_length,
                r.Design.crossbar_yield ))
            (Optimizer.sweep ?ctx ()));
    };
    {
      wname = "fig8-bit-area";
      detail = "bit area, all five families at M in {6,8,10}";
      run =
        (fun ?ctx () ->
          List.map
            (fun (p : Figures.fig8_point) ->
              (label p.Figures.code_type p.Figures.code_length, p.Figures.bit_area))
            (Figures.fig8 ?ctx ()));
    };
    {
      wname = "ablation-sigma-t";
      detail = "TC vs BGC yield across the sigma_T sweep";
      run =
        (fun ?ctx () ->
          List.concat_map
            (fun (p : Ablation.point) ->
              [
                (Printf.sprintf "TC@%g" p.Ablation.value, p.Ablation.tree_yield);
                (Printf.sprintf "BGC@%g" p.Ablation.value, p.Ablation.bgc_yield);
              ])
            (Ablation.sigma_t ?ctx ()).Ablation.points);
    };
  ]

let time_best ~reps f =
  let best = ref infinity and result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* The pool counters worth tracking per workload in the stage
   breakdown. *)
let stage_counters = [
  "pool.jobs"; "pool.jobs.sequential"; "pool.jobs.inline_nested";
  "pool.chunks.submitter"; "pool.chunks.worker"; "pool.batches";
  "pool.autotune.jobs"; "pool.autotune.chunks"; "pool.autotune.batch";
  "pool.autotune.measured"; "pool.autotune.fallback";
  "optimizer.candidates"; "mc.samples";
]

(* Workloads quicker than this are dominated by timer noise and pool
   wake-up latency; their speedups are recorded but must not steer
   [recommended_domains]. *)
let min_seconds_floor = 0.05

let run_json ~quick =
  let reps = if quick then 1 else 3 in
  let domain_counts = [ 2; 4 ] in
  let all_deterministic = ref true in
  let results =
    List.map
      (fun w ->
        (* One untimed warm-up run populates the code-construction memo
           tables so every timed run sees the same warm caches. *)
        let reference = w.run () in
        let _, seq_time = time_best ~reps (fun () -> w.run ()) in
        let pooled =
          List.map
            (fun domains ->
              Run_ctx.with_ctx ~domains (fun ctx ->
                  let values, t =
                    time_best ~reps (fun () -> w.run ~ctx ())
                  in
                  (domains, t, values = reference)))
            domain_counts
        in
        (* One instrumented 4-domain run: its span totals and counters
           become the per-stage breakdown, its full export lands in
           BENCH_telemetry.json, and its values join the determinism
           gate — telemetry must be a pure observer. *)
        let sink = Telemetry.create () in
        let tele_ok =
          Run_ctx.with_ctx ~domains:4 ~telemetry:sink (fun ctx ->
              w.run ~ctx () = reference)
        in
        let deterministic =
          List.for_all (fun (_, _, ok) -> ok) pooled && tele_ok
        in
        if not deterministic then all_deterministic := false;
        Printf.printf "%-18s seq %8.4fs" w.wname seq_time;
        List.iter
          (fun (d, t, _) ->
            Printf.printf "   %dd %8.4fs (%.2fx)" d t (seq_time /. t))
          pooled;
        Printf.printf "   deterministic: %b\n%!" deterministic;
        (w, reference, seq_time, pooled, deterministic, sink))
      (parallel_workloads ~quick)
  in
  (* Recommend the domain count with the best aggregate measured speedup
     over the workloads big enough to time honestly; 1 when nothing
     beats sequential (single-CPU hosts land here by construction). *)
  let eligible =
    List.filter
      (fun (_, _, seq_time, _, deterministic, _) ->
        deterministic && seq_time >= min_seconds_floor)
      results
  in
  let aggregate_speedup domains =
    let seq, par =
      List.fold_left
        (fun (seq, par) (_, _, seq_time, pooled, _, _) ->
          let _, t, _ =
            List.find (fun (d, _, _) -> d = domains) pooled
          in
          (seq +. seq_time, par +. t))
        (0., 0.) eligible
    in
    if par > 0. then seq /. par else 0.
  in
  let recommended_domains_measured =
    List.fold_left
      (fun (best_d, best_s) d ->
        let s = aggregate_speedup d in
        if s > best_s then (d, s) else (best_d, best_s))
      (1, 1.) domain_counts
    |> fst
  in
  (* Never recommend more domains than the host has cores: on a
     small container the 4-domain row can still "win" on oversubscribed
     timing noise, and shipping that number into Run_ctx defaults would
     pessimise every real run. *)
  let cpus = Domain.recommended_domain_count () in
  let recommended_domains = min recommended_domains_measured cpus in
  let recommended_clamped = recommended_domains <> recommended_domains_measured in
  let oc = open_out "BENCH_parallel.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"generated_by\": \"bench/main.exe --json%s\",\n"
    (if quick then " --quick" else "");
  out "  \"quick\": %b,\n" quick;
  out "  \"reps\": %d,\n" reps;
  out "  \"cpus\": %d,\n" cpus;
  out "  \"min_seconds_floor\": %.3f,\n" min_seconds_floor;
  out "  \"recommended_domains\": %d,\n" recommended_domains;
  out "  \"recommended_domains_measured\": %d,\n" recommended_domains_measured;
  out "  \"recommended_domains_clamped\": %b,\n" recommended_clamped;
  out "  \"all_deterministic\": %b,\n" !all_deterministic;
  out "  \"workloads\": [\n";
  List.iteri
    (fun i (w, reference, seq_time, pooled, deterministic, sink) ->
      out "    {\n";
      out "      \"name\": \"%s\",\n" (json_escape w.wname);
      out "      \"detail\": \"%s\",\n" (json_escape w.detail);
      out "      \"seconds\": {\"seq\": %.6f" seq_time;
      List.iter (fun (d, t, _) -> out ", \"domains%d\": %.6f" d t) pooled;
      out "},\n";
      out "      \"speedup\": {";
      List.iteri
        (fun j (d, t, _) ->
          out "%s\"domains%d\": %.3f" (if j > 0 then ", " else "") d
            (seq_time /. t))
        pooled;
      out "},\n";
      out "      \"deterministic\": %b,\n" deterministic;
      out "      \"too_fast_to_time\": %b,\n" (seq_time < min_seconds_floor);
      (* Stage breakdown of the instrumented 4-domain run: total
         seconds per span name plus the pool/estimator counters. *)
      out "      \"stages\": {";
      List.iteri
        (fun j (name, (count, seconds)) ->
          out "%s\"%s\": {\"count\": %d, \"seconds\": %.6f}"
            (if j > 0 then ", " else "")
            (json_escape name) count seconds)
        (Telemetry.span_totals sink);
      out "},\n";
      out "      \"counters\": {";
      let counters = Telemetry.counters sink in
      List.iteri
        (fun j name ->
          let v =
            Option.value ~default:0 (List.assoc_opt name counters)
          in
          out "%s\"%s\": %d" (if j > 0 then ", " else "") (json_escape name) v)
        stage_counters;
      out "},\n";
      out "      \"values\": {";
      List.iteri
        (fun j (k, v) ->
          out "%s\"%s\": %.17g" (if j > 0 then ", " else "") (json_escape k) v)
        reference;
      out "}\n";
      out "    }%s\n" (if i < List.length results - 1 then "," else ""))
    results;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_parallel.json (%d workloads)\n"
    (List.length results);
  (* Full span-tree export of every workload's instrumented run. *)
  let oc = open_out "BENCH_telemetry.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"workloads\": [\n";
  List.iteri
    (fun i (w, _, _, _, _, sink) ->
      out "    {\"name\": \"%s\", \"telemetry\": %s}%s\n" (json_escape w.wname)
        (Telemetry.to_json sink)
        (if i < List.length results - 1 then "," else ""))
    results;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_telemetry.json (%d workloads)\n"
    (List.length results);
  if not !all_deterministic then begin
    prerr_endline
      "FAIL: parallel results diverged from the sequential reference";
    exit 1
  end;
  (* The scheduler gate's inputs: the four-domain speedup of the
     Monte-Carlo workload (the job the batched scheduler exists for). *)
  let fig7_speedup_4d =
    match
      List.find_opt (fun (w, _, _, _, _, _) -> w.wname = "fig7-mc-yield")
        results
    with
    | Some (_, _, seq_time, pooled, _, _) -> (
      match List.find_opt (fun (d, _, _) -> d = 4) pooled with
      | Some (_, t, _) when t > 0. -> seq_time /. t
      | Some _ | None -> 0.)
    | None -> 0.
  in
  (fig7_speedup_4d, !all_deterministic)

(* --gate-parallel-speedup T: the batched scheduler must reach a T-fold
   four-domain speedup on fig7-mc-yield (and stay bit-for-bit
   deterministic — run_json already hard-fails on divergence).  Meant
   for CI runners with >= 4 hardware threads; a single-CPU host cannot
   pass it physically. *)
let gate_parallel_speedup ~threshold (fig7_speedup_4d, all_deterministic) =
  Printf.printf
    "parallel gate: fig7-mc-yield at 4 domains %.2fx (threshold %.2fx)\n"
    fig7_speedup_4d threshold;
  if not all_deterministic then begin
    prerr_endline
      "FAIL: parallel results diverged from the sequential reference";
    exit 1
  end;
  if fig7_speedup_4d < threshold then begin
    Printf.eprintf
      "FAIL: fig7-mc-yield four-domain speedup %.2fx below the %.2fx gate\n"
      fig7_speedup_4d threshold;
    exit 1
  end

(* --- kernel bench: BENCH_kernels.json + --gate-kernel-speedup ---

   Times the compiled MC kernel (Cave.mc_yield_window_par, pool-less)
   against the allocating reference draw (Cave.mc_yield_window_reference)
   on every Fig. 7 candidate design: same seed, same chunking, same
   sample count, best-of-N wall time on both sides.  Every pair of
   estimates must be bit-for-bit identical — the kernel is licensed as an
   optimisation only.  Writes BENCH_kernels.json; --gate-kernel-speedup
   fails the process if the aggregate speedup over the designs drops
   below 2x or any estimate diverges. *)

let kernel_designs ~quick =
  let samples = if quick then 500 else 4_000 in
  List.map
    (fun (ct, m) ->
      let spec = Design.spec ~code_type:ct ~code_length:m () in
      ( Printf.sprintf "%s-M%d" (Codebook.name ct) m,
        samples,
        Nanodec_crossbar.Cave.analyze spec.Design.cave ))
    Figures.fig7_candidates

let run_kernel_json ~quick =
  let module Cave = Nanodec_crossbar.Cave in
  let module Kernel = Nanodec_crossbar.Kernel in
  let reps = 5 in
  let rows =
    List.map
      (fun (name, samples, analysis) ->
        let kernel = Cave.kernel_of_analysis analysis in
        (* Warm both paths outside the timer: code-construction memo
           tables, and the domain-local workspace buffer the kernel
           grows on first contact. *)
        ignore
          (Cave.mc_yield_window_reference (Rng.create ~seed:2009) ~samples:16
             analysis);
        ignore
          (Cave.mc_yield_window_par (Rng.create ~seed:2009) ~samples:16
             analysis);
        let reference, t_ref =
          time_best ~reps (fun () ->
              Cave.mc_yield_window_reference (Rng.create ~seed:2009) ~samples
                analysis)
        in
        let kernelized, t_ker =
          time_best ~reps (fun () ->
              Cave.mc_yield_window_par (Rng.create ~seed:2009) ~samples
                analysis)
        in
        let identical = reference = kernelized in
        Printf.printf
          "%-8s reference %8.4fs   kernel %8.4fs   %5.2fx   identical: %b\n%!"
          name t_ref t_ker (t_ref /. t_ker) identical;
        ( name,
          samples,
          Kernel.draws_per_sample kernel,
          Kernel.n_passes kernel,
          t_ref,
          t_ker,
          identical,
          reference.Montecarlo.mean ))
      (kernel_designs ~quick)
  in
  let total_ref =
    List.fold_left (fun acc (_, _, _, _, t, _, _, _) -> acc +. t) 0. rows
  in
  let total_ker =
    List.fold_left (fun acc (_, _, _, _, _, t, _, _) -> acc +. t) 0. rows
  in
  let aggregate = total_ref /. total_ker in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, ok, _) -> ok) rows
  in
  Printf.printf
    "kernel aggregate over %d designs (best of %d): %.4fs -> %.4fs (%.2fx), \
     identical: %b\n"
    (List.length rows) reps total_ref total_ker aggregate all_identical;
  let oc = open_out "BENCH_kernels.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"generated_by\": \"bench/main.exe --json%s\",\n"
    (if quick then " --quick" else "");
  out "  \"quick\": %b,\n" quick;
  out "  \"reps\": %d,\n" reps;
  out "  \"all_identical\": %b,\n" all_identical;
  out "  \"aggregate_speedup\": %.3f,\n" aggregate;
  out "  \"designs\": [\n";
  List.iteri
    (fun i (name, samples, draws, passes, t_ref, t_ker, identical, mean) ->
      out
        "    {\"name\": \"%s\", \"samples\": %d, \"draws_per_sample\": %d, \
         \"passes\": %d, \"seconds\": {\"reference\": %.6f, \"kernel\": \
         %.6f}, \"speedup\": %.3f, \"identical\": %b, \"mean\": %.17g}%s\n"
        (json_escape name) samples draws passes t_ref t_ker (t_ref /. t_ker)
        identical mean
        (if i < List.length rows - 1 then "," else ""))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_kernels.json (%d designs)\n" (List.length rows);
  (aggregate, all_identical)

let gate_kernel_speedup (aggregate, all_identical) =
  if not all_identical then begin
    prerr_endline
      "FAIL: kernelized estimate diverged from the reference draw";
    exit 1
  end;
  if aggregate < 2. then begin
    Printf.eprintf
      "FAIL: compiled kernel speedup %.2fx below the 2x gate\n" aggregate;
    exit 1
  end

(* --- variance-reduction bench: BENCH_mc.json + --gate-vr-samples ---

   Measures, per Fig. 7 candidate design, how many samples each
   sampling strategy needs to pin the window yield to the same +/- CI a
   plain Monte-Carlo run would need — the tentpole claim of the
   [Montecarlo.spec] redesign.  The plain side is exact, not sampled:
   each wire passes independently with the closed-form probability
   [analysis.wire_probability], so the per-sample variance of the plain
   estimator is (1/n^2) sum p_i (1 - p_i) with no pilot noise.  Each
   variance-reduced strategy gets a pilot run whose empirical variance
   converts to a samples-to-target count at the same CI half-width
   (h = rel_target * yield, n = v * (z/h)^2), and its estimate must
   bracket the analytic yield — a biased "fast" estimator fails the
   bench, never mind the gate.

   The bench runs at a production operating point (sigma_t = 0.02, the
   tightened implant control of a tuned process) where yields are high
   and plain sampling wastes almost every draw on all-pass samples;
   importance sampling aims every draw at the failure boundary and
   reweights exactly, which is where the 10x comes from.

   A determinism battery reruns the best strategy across domain counts
   1/2/4, chunking policies and batch sizes — any drift fails the
   process, exactly like the parallel bench's gate.

   --gate-vr-samples RATIO fails the process unless at least 3
   high-yield designs (analytic yield >= 0.9) reach a RATIO-fold
   sample reduction with a bracketing estimate. *)

let mc_rel_target = 0.001
let mc_sigma_t = 0.02
let mc_high_yield = 0.9
let mc_gate_designs = 3

let mc_designs () =
  List.map
    (fun (ct, m) ->
      let spec = Design.spec ~code_type:ct ~code_length:m () in
      let config =
        { spec.Design.cave with Nanodec_crossbar.Cave.sigma_t = mc_sigma_t }
      in
      ( Printf.sprintf "%s-M%d" (Codebook.name ct) m,
        Nanodec_crossbar.Cave.analyze config ))
    Figures.fig7_candidates

let run_mc_json ~quick =
  let module Cave = Nanodec_crossbar.Cave in
  let module Kernel = Nanodec_crossbar.Kernel in
  let pilot = if quick then 1_000 else 4_000 in
  let z = Montecarlo.z95 in
  let strategies =
    [
      ("stratified-16", Montecarlo.Stratified 16);
      ("importance-1.0", Montecarlo.Importance 1.0);
    ]
  in
  let samples_to_target ~mean v =
    let h = mc_rel_target *. Float.abs mean in
    int_of_float (ceil (v *. (z /. h) ** 2.))
  in
  let rows =
    List.map
      (fun (name, analysis) ->
        let kernel = Cave.kernel_of_analysis analysis in
        let target = Kernel.target kernel in
        let exact = analysis.Cave.yield in
        let n = float_of_int (Array.length analysis.Cave.wire_probability) in
        let v_plain =
          Array.fold_left
            (fun acc p -> acc +. (p *. (1. -. p)))
            0. analysis.Cave.wire_probability
          /. (n *. n)
        in
        let exact_se = sqrt (v_plain /. float_of_int pilot) in
        let n_plain = samples_to_target ~mean:exact v_plain in
        let cells =
          List.map
            (fun (sname, strategy) ->
              let e =
                Montecarlo.run
                  (Montecarlo.spec ~strategy (Montecarlo.fixed pilot))
                  (Rng.create ~seed:2009) target
              in
              let v =
                e.Montecarlo.std_error ** 2. *. float_of_int e.Montecarlo.samples
              in
              let brackets =
                Float.abs (e.Montecarlo.mean -. exact)
                <= (6. *. (e.Montecarlo.std_error +. exact_se)) +. 1e-9
              in
              let n_s = max 2 (samples_to_target ~mean:exact v) in
              ( sname,
                v,
                n_s,
                float_of_int n_plain /. float_of_int n_s,
                brackets ))
            strategies
        in
        (* Determinism battery on the winning strategy: the sample
           schedule must not leak into the estimate. *)
        let best_name, best_strategy =
          let best, _ =
            List.fold_left2
              (fun (acc, av) (sname, _, _, vr, _) s ->
                if vr > av then ((sname, snd s), vr) else (acc, av))
              (("", Montecarlo.Plain), neg_infinity)
              cells strategies
          in
          best
        in
        let spec =
          Montecarlo.spec ~strategy:best_strategy (Montecarlo.fixed 512)
        in
        let baseline = Montecarlo.run spec (Rng.create ~seed:7) target in
        let deterministic =
          List.for_all
            (fun (domains, chunking, batch) ->
              Run_ctx.with_ctx ~domains ~chunking ?batch ~warn:false
                (fun ctx ->
                  Montecarlo.run ~ctx spec (Rng.create ~seed:7) target
                  = baseline))
            [
              (1, Run_ctx.Fixed 5, None);
              (2, Run_ctx.Auto, None);
              (2, Run_ctx.Fixed 16, Some 4);
              (4, Run_ctx.Auto, None);
              (4, Run_ctx.Fixed 3, Some 2);
            ]
        in
        let _, _, _, best_vr, best_ok =
          List.find (fun (s, _, _, _, _) -> s = best_name) cells
        in
        Printf.printf
          "%-8s yield %.5f  plain n=%-9d best %s  n=%-8d (%6.1fx)  \
           brackets: %b  deterministic: %b\n%!"
          name exact n_plain best_name
          (let _, _, n_s, _, _ =
             List.find (fun (s, _, _, _, _) -> s = best_name) cells
           in
           n_s)
          best_vr best_ok deterministic;
        (name, exact, v_plain, n_plain, cells, best_name, deterministic))
      (mc_designs ())
  in
  let gate_rows =
    List.filter_map
      (fun (name, exact, _, _, cells, best_name, deterministic) ->
        if exact < mc_high_yield then None
        else
          let _, _, _, vr, ok =
            List.find (fun (s, _, _, _, _) -> s = best_name) cells
          in
          if ok && deterministic then Some (name, vr) else None)
      rows
  in
  let oc = open_out "BENCH_mc.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"generated_by\": \"bench/main.exe --mc%s\",\n"
    (if quick then " --quick" else "");
  out "  \"quick\": %b,\n" quick;
  out "  \"pilot_samples\": %d,\n" pilot;
  out "  \"rel_target\": %g,\n" mc_rel_target;
  out "  \"sigma_t\": %g,\n" mc_sigma_t;
  out "  \"high_yield_threshold\": %g,\n" mc_high_yield;
  out "  \"designs\": [\n";
  List.iteri
    (fun i (name, exact, v_plain, n_plain, cells, best_name, deterministic) ->
      out
        "    {\"name\": \"%s\", \"yield\": %.17g, \"plain\": {\"variance\": \
         %.6e, \"samples_to_target\": %d}, \"high_yield\": %b, \"best\": \
         \"%s\", \"deterministic\": %b, \"strategies\": {"
        (json_escape name) exact v_plain n_plain (exact >= mc_high_yield)
        (json_escape best_name) deterministic;
      List.iteri
        (fun j (sname, v, n_s, vr, ok) ->
          out
            "%s\"%s\": {\"variance\": %.6e, \"samples_to_target\": %d, \
             \"vr_factor\": %.3f, \"brackets_exact\": %b}"
            (if j > 0 then ", " else "")
            (json_escape sname) v n_s vr ok)
        cells;
      out "}}%s\n" (if i < List.length rows - 1 then "," else ""))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_mc.json (%d designs, %d high-yield at gate)\n"
    (List.length rows) (List.length gate_rows);
  gate_rows

(* --gate-vr-samples RATIO: at least [mc_gate_designs] high-yield
   designs must cut the samples-to-CI by RATIO with a bracketing,
   schedule-deterministic estimate. *)
let gate_vr_samples ~threshold gate_rows =
  let passing = List.filter (fun (_, vr) -> vr >= threshold) gate_rows in
  Printf.printf
    "variance-reduction gate: %d high-yield designs at >= %.1fx (need %d)\n"
    (List.length passing) threshold mc_gate_designs;
  List.iter
    (fun (name, vr) -> Printf.printf "  %-8s %6.1fx\n" name vr)
    passing;
  if List.length passing < mc_gate_designs then begin
    Printf.eprintf
      "FAIL: only %d high-yield designs reached the %.1fx \
       variance-reduction gate (need %d)\n"
      (List.length passing) threshold mc_gate_designs;
    exit 1
  end

(* --gate-overhead: a sink on the sequential path must cost < 5 %.
   Best-of-5 on the Monte-Carlo workload, whose per-chunk probes make
   it the most telemetry-dense of the four. *)
let gate_overhead ~quick =
  let w = List.hd (parallel_workloads ~quick) in
  let reps = 5 in
  ignore (w.run ());
  let _, off = time_best ~reps (fun () -> w.run ()) in
  let sink = Telemetry.create () in
  let ctx = Run_ctx.make ~telemetry:sink () in
  let _, on_t = time_best ~reps (fun () -> w.run ~ctx ()) in
  let overhead = (on_t -. off) /. off in
  Printf.printf
    "telemetry overhead (%s, seq, best of %d): off %.4fs, on %.4fs (%+.2f%%)\n"
    w.wname reps off on_t (100. *. overhead);
  if overhead > 0.05 then begin
    prerr_endline "FAIL: telemetry overhead exceeds 5%";
    exit 1
  end

(* --gate-fault-overhead: the fault-injection probes are compiled in
   unconditionally, so an engine whose plan matches nothing must cost
   < 2 % over running with no engine at all.  Best-of-5 on the
   Monte-Carlo workload, whose per-chunk and per-batch probes make it
   the most probe-dense of the four. *)
let gate_fault_overhead ~quick =
  let w = List.hd (parallel_workloads ~quick) in
  let reps = 5 in
  ignore (w.run ());
  let off_ctx = Run_ctx.make () in
  let _, off = time_best ~reps (fun () -> w.run ~ctx:off_ctx ()) in
  let on_ctx = Run_ctx.make ~fault:(Nanodec_fault.Fault.inert ()) () in
  let _, on_t = time_best ~reps (fun () -> w.run ~ctx:on_ctx ()) in
  let overhead = (on_t -. off) /. off in
  Printf.printf
    "fault-probe overhead (%s, seq, best of %d): off %.4fs, inert %.4fs \
     (%+.2f%%)\n"
    w.wname reps off on_t (100. *. overhead);
  if overhead > 0.02 then begin
    prerr_endline "FAIL: disabled fault-injection overhead exceeds 2%";
    exit 1
  end

(* --- serve bench: BENCH_serve.json + the warm-cache gates ---

   Three daemon lifetimes on one Unix socket:

   1. cold/warm evaluates over every Fig. 7 candidate, a serial and a
      4-client concurrent throughput loop, then a graceful shutdown
      whose drain writes the artifact-cache snapshot;
   2. a restarted daemon on the same [--cache-file]: every request must
      come back warm, byte-identical to the pre-restart cold bytes, and
      the whole warm-after-restart pass at least 5x faster than cold;
   3. an overload probe (max-inflight 1, max-queue 1, the first request
      stalled by an injected serve.dispatch fault): of five pipelined
      requests exactly capacity are admitted, and the shed count on the
      wire must equal the [serve.shed] telemetry counter exactly.

   The p50/p99 of the daemon's own [serve.request_s] histogram land in
   BENCH_serve.json alongside the per-design rows and the concurrency /
   overload / persistence stats.  All gates are always-on: a cache that
   misses, corrupts, fails to survive a restart or fails to pay for
   itself — or admission control that miscounts — fails the process. *)

module Serve = Nanodec_serve
module Fault = Nanodec_fault.Fault

let serve_gate_threshold = 5.

(* Batching on vs. off over the same concurrent cold-MC request load:
   fusing must buy at least this request-throughput factor. *)
let serve_batch_gate = 3.

let serve_quantile ~q (h : Telemetry.hist_stats) =
  let target = q *. float_of_int h.Telemetry.hs_count in
  let rec scan acc = function
    | [] -> h.Telemetry.hs_max_s
    | (upper, n) :: rest ->
      let acc = acc + n in
      if float_of_int acc >= target then upper else scan acc rest
  in
  scan 0 h.Telemetry.hs_buckets

let serve_result_of line response =
  match Serve.Json.parse response with
  | Error msg ->
    Printf.eprintf "FAIL: unparsable daemon response to %s: %s\n" line msg;
    exit 1
  | Ok json ->
    let field name to_v =
      match Option.bind (Serve.Json.member name json) to_v with
      | Some v -> v
      | None ->
        Printf.eprintf "FAIL: daemon response to %s lacks %S: %s\n" line name
          response;
        exit 1
    in
    if field "status" Serve.Json.to_string_opt <> "ok" then begin
      Printf.eprintf "FAIL: daemon answered an error to %s: %s\n" line response;
      exit 1
    end;
    ( field "cached" Serve.Json.to_bool_opt,
      Serve.Json.to_string (field "result" Option.some) )

let run_serve_json ~quick =
  let mc_samples = if quick then 500 else 4_000 in
  let warm_reps = 3 in
  let throughput_requests = if quick then 200 else 1_000 in
  let conc_clients = 4 in
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nanodec-bench-%d.sock" (Unix.getpid ()))
  in
  let cache_file =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nanodec-bench-%d.snapshot" (Unix.getpid ()))
  in
  let requests =
    List.map
      (fun (ct, m) ->
        ( Printf.sprintf "%s-M%d" (Codebook.name ct) m,
          Printf.sprintf
            {|{"verb":"evaluate","params":{"code":"%s","length":%d},"exec":{"seed":2009,"mc_samples":%d}}|}
            (Codebook.name ct) m mc_samples ))
      Figures.fig7_candidates
  in
  let lines = Array.of_list (List.map snd requests) in
  let sink = Telemetry.create () in
  (* Phase 1: cold/warm + throughput; the graceful drain persists the
     cache snapshot for phase 2. *)
  let rows, throughput, conc_throughput =
    Run_ctx.with_ctx ~domains:4 ~telemetry:sink @@ fun ctx ->
    let state = Serve.Protocol.make_state ~base:ctx () in
    let server = Serve.Server.create ~cache_file ~state (`Unix socket_path) in
    let server_thread = Thread.create Serve.Server.serve server in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.close server;
        Thread.join server_thread)
      (fun () ->
        let rows, throughput_s =
          Serve.Client.with_connection (`Unix socket_path) @@ fun conn ->
          let timed line =
            let t0 = Unix.gettimeofday () in
            let response = Serve.Client.request conn line in
            (Unix.gettimeofday () -. t0, response)
          in
          section
            (Printf.sprintf
               "SERVE — cold vs warm-cache evaluate, %d fig7 designs x %d MC \
                samples"
               (List.length requests) mc_samples);
          let rows =
            List.map
              (fun (name, line) ->
                let cold_s, cold_response = timed line in
                let cold_cached, cold_result =
                  serve_result_of line cold_response
                in
                let warm_s = ref infinity and warm = ref None in
                for _ = 1 to warm_reps do
                  let t, response = timed line in
                  if t < !warm_s then warm_s := t;
                  warm := Some response
                done;
                let warm_cached, warm_result =
                  serve_result_of line (Option.get !warm)
                in
                let ok =
                  (not cold_cached) && warm_cached
                  && String.equal cold_result warm_result
                in
                Printf.printf
                  "%-8s cold %8.4fs   warm %8.4fs (%6.1fx)   hit ok: %b\n%!"
                  name cold_s !warm_s (cold_s /. !warm_s) ok;
                (name, cold_s, !warm_s, ok, cold_result))
              requests
          in
          (* Throughput: warm evaluates round-robin over the design set. *)
          let t0 = Unix.gettimeofday () in
          for i = 0 to throughput_requests - 1 do
            ignore
              (Serve.Client.request conn lines.(i mod Array.length lines))
          done;
          (rows, Unix.gettimeofday () -. t0)
        in
        (* Concurrent throughput: the same warm load split over
           [conc_clients] connections hitting the worker pool at once. *)
        let per_client = throughput_requests / conc_clients in
        let t0 = Unix.gettimeofday () in
        let clients =
          List.init conc_clients (fun _ ->
              Thread.create
                (fun () ->
                  Serve.Client.with_connection (`Unix socket_path)
                  @@ fun conn ->
                  for i = 0 to per_client - 1 do
                    ignore
                      (Serve.Client.request conn
                         lines.(i mod Array.length lines))
                  done)
                ())
        in
        List.iter Thread.join clients;
        let conc_s = Unix.gettimeofday () -. t0 in
        (Serve.Client.with_connection (`Unix socket_path) @@ fun conn ->
         ignore (Serve.Client.request conn {|{"verb":"shutdown"}|}));
        (* Join the drain: the snapshot must be on disk before the
           restart phase boots. *)
        Thread.join server_thread;
        (rows, throughput_s, conc_s))
  in
  let snapshot_bytes =
    match Unix.stat cache_file with
    | s -> s.Unix.st_size
    | exception Unix.Unix_error _ -> 0
  in
  (* Phase 2: a fresh daemon restored from the snapshot — warm from
     request one, byte-identical to the pre-restart cold bytes. *)
  let restart_s, restart_all_warm, restart_identical =
    Run_ctx.with_ctx ~domains:4 @@ fun ctx ->
    let state = Serve.Protocol.make_state ~base:ctx () in
    let server = Serve.Server.create ~cache_file ~state (`Unix socket_path) in
    let server_thread = Thread.create Serve.Server.serve server in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.close server;
        Thread.join server_thread)
      (fun () ->
        let dt, answers =
          Serve.Client.with_connection (`Unix socket_path) @@ fun conn ->
          let t0 = Unix.gettimeofday () in
          let answers =
            List.map
              (fun (name, line) ->
                let cached, result =
                  serve_result_of line (Serve.Client.request conn line)
                in
                (name, cached, result))
              requests
          in
          let dt = Unix.gettimeofday () -. t0 in
          ignore (Serve.Client.request conn {|{"verb":"shutdown"}|});
          (dt, answers)
        in
        Thread.join server_thread;
        ( dt,
          List.for_all (fun (_, cached, _) -> cached) answers,
          List.for_all
            (fun (name, _, result) ->
              List.exists
                (fun (n, _, _, _, cold_result) ->
                  String.equal n name && String.equal result cold_result)
                rows)
            answers ))
  in
  (try Sys.remove cache_file with Sys_error _ -> ());
  (* Phase 3: deterministic overload.  Capacity 2 (one worker, one
     queue slot), the first request stalled at serve.dispatch: of five
     pipelined requests exactly three must shed, and the telemetry
     counter must agree with the wire. *)
  let overload_capacity = 2 and overload_pipelined = 5 in
  let overload_shed, overload_tele =
    let osink = Telemetry.create () in
    let fault =
      Fault.create (Fault.parse_exn "seed=1;serve.dispatch:stall=300ms:key=0")
    in
    Run_ctx.with_ctx ~domains:1 ~telemetry:osink ~fault @@ fun ctx ->
    let state = Serve.Protocol.make_state ~base:ctx () in
    let server =
      Serve.Server.create ~max_inflight:1 ~max_queue:1 ~state
        (`Unix socket_path)
    in
    let server_thread = Thread.create Serve.Server.serve server in
    Fun.protect
      ~finally:(fun () ->
        Serve.Server.close server;
        Thread.join server_thread)
      (fun () ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket_path);
        let payload =
          String.concat ""
            (List.init overload_pipelined (fun _ -> {|{"verb":"ping"}|} ^ "\n"))
        in
        ignore (Unix.write_substring fd payload 0 (String.length payload));
        let ic = Unix.in_channel_of_descr fd in
        let shed = ref 0 in
        for _ = 1 to overload_pipelined do
          match Serve.Json.parse (input_line ic) with
          | Ok json ->
            if
              Option.bind (Serve.Json.member "kind" json)
                Serve.Json.to_string_opt
              = Some "overloaded"
            then incr shed
          | Error msg ->
            Printf.eprintf "FAIL: unparsable overload response: %s\n" msg;
            exit 1
        done;
        Unix.close fd;
        (Serve.Client.with_connection (`Unix socket_path) @@ fun conn ->
         ignore (Serve.Client.request conn {|{"verb":"shutdown"}|}));
        Thread.join server_thread;
        ( !shed,
          Option.value ~default:0
            (List.assoc_opt "serve.shed" (Telemetry.counters osink)) ))
  in
  (* Phase 4: batch fusion.  Many concurrent clients march in rounds
     over the fig7 candidates: within a round, half the clients ask one
     design and half another, every client in a group asking the {e
     same} (design, seed, samples) estimate — the dashboard-refresh
     load the batcher was built for.  Both daemons run with the result
     cache {e disabled}, which isolates the batcher's contribution
     from the cache's (cache-on duplicate absorption is what the
     warm-cache gates above already measure): unbatched, every
     duplicate pays its own full Monte-Carlo build; fused, one
     mixed-design [Montecarlo.run_many] mega-run computes each
     distinct key once and the overlay answers every member of the
     batch.  Same request stream, same sample counts both ways — only
     [batch_window_s] differs — and every response must be
     byte-identical. *)
  let batch_clients = 16 in
  let batch_rounds = if quick then 4 else 8 in
  let batch_samples = 1_024 in
  let batch_requests_n = batch_clients * batch_rounds in
  (* Generous window: the daemon's eager flush — buffered requests are
     dispatched the moment they are the only outstanding work — fires
     long before the window expires, right after the burst's leading
     request completes and warms its key.  A short window would expire
     mid-build and re-fetch keys still in flight. *)
  let batch_window_ms = 100. in
  let batch_candidates = Array.of_list Figures.fig7_candidates in
  let batch_line ~client ~round =
    let group = if client < batch_clients / 2 then 0 else 1 in
    let ct, m =
      batch_candidates.(((2 * round) + group) mod Array.length batch_candidates)
    in
    Printf.sprintf
      {|{"verb":"evaluate","params":{"code":"%s","length":%d},"exec":{"seed":%d,"mc_samples":%d}}|}
      (Codebook.name ct) m (41_000 + round) batch_samples
  in
  let batch_distinct_keys = 2 * batch_rounds in
  let run_batch_pass ~window_ms =
    let bsink = Telemetry.create () in
    let dt, responses =
      Run_ctx.with_ctx ~domains:4 ~telemetry:bsink @@ fun ctx ->
      let state = Serve.Protocol.make_state ~cache_enabled:false ~base:ctx () in
      let server =
        Serve.Server.create ~max_inflight:batch_clients
          ~batch_window_s:(window_ms /. 1000.)
          ~max_batch:64 ~state (`Unix socket_path)
      in
      let server_thread = Thread.create Serve.Server.serve server in
      Fun.protect
        ~finally:(fun () ->
          Serve.Server.close server;
          Thread.join server_thread)
        (fun () ->
          let responses = Array.make batch_requests_n "" in
          (* A between-rounds barrier keeps the clients in lockstep, so
             every round hits the daemon as one simultaneous burst of
             duplicate keys — the refresh-storm shape this phase is
             about.  Without it the rounds smear and both daemons just
             measure the cache. *)
          let bar_mu = Mutex.create () in
          let bar_cv = Condition.create () in
          let bar_arrived = ref 0 and bar_round = ref 0 in
          let barrier () =
            Mutex.lock bar_mu;
            incr bar_arrived;
            if !bar_arrived = batch_clients then begin
              bar_arrived := 0;
              incr bar_round;
              Condition.broadcast bar_cv
            end
            else begin
              let target = !bar_round + 1 in
              while !bar_round < target do
                Condition.wait bar_cv bar_mu
              done
            end;
            Mutex.unlock bar_mu
          in
          let t0 = Unix.gettimeofday () in
          let clients =
            List.init batch_clients (fun c ->
                Thread.create
                  (fun () ->
                    Serve.Client.with_connection (`Unix socket_path)
                    @@ fun conn ->
                    for r = 0 to batch_rounds - 1 do
                      barrier ();
                      responses.((c * batch_rounds) + r) <-
                        Serve.Client.request conn
                          (batch_line ~client:c ~round:r)
                    done)
                  ())
          in
          List.iter Thread.join clients;
          let dt = Unix.gettimeofday () -. t0 in
          (Serve.Client.with_connection (`Unix socket_path) @@ fun conn ->
           ignore (Serve.Client.request conn {|{"verb":"shutdown"}|}));
          Thread.join server_thread;
          (dt, responses))
    in
    (dt, responses, bsink)
  in
  let batch_off_s, batch_off_responses, _ = run_batch_pass ~window_ms:0. in
  let batch_on_s, batch_on_responses, bsink_batch =
    run_batch_pass ~window_ms:batch_window_ms
  in
  let batch_identical =
    try
      Array.iteri
        (fun i r ->
          let c = i / batch_rounds and round = i mod batch_rounds in
          ignore (serve_result_of (batch_line ~client:c ~round) r);
          if not (String.equal r batch_off_responses.(i)) then raise Exit)
        batch_on_responses;
      true
    with Exit -> false
  in
  let batch_counter name =
    Option.value ~default:0
      (List.assoc_opt name (Telemetry.counters bsink_batch))
  in
  let batch_fused = batch_counter "serve.batch.fused" in
  let batch_flush_window = batch_counter "serve.batch.flush.window" in
  let batch_flush_full = batch_counter "serve.batch.flush.full" in
  let batch_flush_drain = batch_counter "serve.batch.flush.drain" in
  let batch_count, batch_size_p50, batch_size_max =
    match
      List.find_opt
        (fun h -> h.Telemetry.hs_name = "serve.batch.size")
        (Telemetry.histograms bsink_batch)
    with
    | Some h ->
      (h.Telemetry.hs_count, serve_quantile ~q:0.5 h, h.Telemetry.hs_max_s)
    | None -> (0, 0., 0.)
  in
  let cold_total = List.fold_left (fun a (_, c, _, _, _) -> a +. c) 0. rows in
  let warm_total = List.fold_left (fun a (_, _, w, _, _) -> a +. w) 0. rows in
  let all_identical = List.for_all (fun (_, _, _, ok, _) -> ok) rows in
  let speedup = cold_total /. warm_total in
  let rps = float_of_int throughput_requests /. throughput in
  let conc_rps = float_of_int throughput_requests /. conc_throughput in
  let restart_speedup = cold_total /. restart_s in
  let latency =
    List.find_opt
      (fun h -> h.Telemetry.hs_name = "serve.request_s")
      (Telemetry.histograms sink)
  in
  Printf.printf
    "serve aggregate: cold %.4fs -> warm %.4fs (%.1fx), identical: %b\n"
    cold_total warm_total speedup all_identical;
  Printf.printf "serve throughput: %d warm requests in %.4fs (%.0f req/s)\n"
    throughput_requests throughput rps;
  Printf.printf
    "serve concurrency: %d clients x %d warm requests in %.4fs (%.0f req/s)\n"
    conc_clients
    (throughput_requests / conc_clients)
    conc_throughput conc_rps;
  Printf.printf
    "serve restart: %d-byte snapshot, warm pass %.4fs (%.1fx vs cold), all \
     warm: %b, identical: %b\n"
    snapshot_bytes restart_s restart_speedup restart_all_warm restart_identical;
  Printf.printf
    "serve overload: %d pipelined at capacity %d -> %d shed (telemetry %d)\n"
    overload_pipelined overload_capacity overload_shed overload_tele;
  let batch_speedup = batch_off_s /. batch_on_s in
  let batch_rps_on = float_of_int batch_requests_n /. batch_on_s in
  let batch_rps_off = float_of_int batch_requests_n /. batch_off_s in
  Printf.printf
    "serve batching: %d clients, %d requests over %d distinct estimates (%d \
     samples each): off %.4fs (%.0f req/s) -> on %.4fs (%.0f req/s), %.2fx, \
     identical: %b\n"
    batch_clients batch_requests_n batch_distinct_keys batch_samples
    batch_off_s batch_rps_off batch_on_s batch_rps_on batch_speedup
    batch_identical;
  Printf.printf
    "serve batching: %d batches (p50 size <= %.0f, max %.0f), %d fused \
     requests, flushes window/full/drain %d/%d/%d\n"
    batch_count batch_size_p50 batch_size_max batch_fused batch_flush_window
    batch_flush_full batch_flush_drain;
  (match latency with
  | Some h ->
    Printf.printf
      "serve latency (daemon-side, %d requests): p50 <= %.6fs, p99 <= %.6fs, \
       max %.6fs\n"
      h.Telemetry.hs_count
      (serve_quantile ~q:0.5 h)
      (serve_quantile ~q:0.99 h)
      h.Telemetry.hs_max_s
  | None -> print_endline "serve latency: no serve.request_s histogram");
  let oc = open_out "BENCH_serve.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"generated_by\": \"bench/main.exe --serve%s\",\n"
    (if quick then " --quick" else "");
  out "  \"quick\": %b,\n" quick;
  out "  \"mc_samples\": %d,\n" mc_samples;
  out "  \"warm_reps\": %d,\n" warm_reps;
  out "  \"gate_threshold\": %.1f,\n" serve_gate_threshold;
  out "  \"all_identical\": %b,\n" all_identical;
  out "  \"seconds\": {\"cold\": %.6f, \"warm\": %.6f},\n" cold_total warm_total;
  out "  \"speedup\": %.3f,\n" speedup;
  out "  \"throughput\": {\"requests\": %d, \"seconds\": %.6f, \"rps\": %.1f},\n"
    throughput_requests throughput rps;
  out
    "  \"concurrency\": {\"clients\": %d, \"requests\": %d, \"seconds\": \
     %.6f, \"rps\": %.1f},\n"
    conc_clients throughput_requests conc_throughput conc_rps;
  out
    "  \"overload\": {\"capacity\": %d, \"pipelined\": %d, \"shed\": %d, \
     \"telemetry_shed\": %d},\n"
    overload_capacity overload_pipelined overload_shed overload_tele;
  out
    "  \"persistence\": {\"snapshot_bytes\": %d, \"restart_seconds\": %.6f, \
     \"restart_speedup\": %.3f, \"all_warm\": %b, \"identical\": %b},\n"
    snapshot_bytes restart_s restart_speedup restart_all_warm restart_identical;
  (match latency with
  | Some h ->
    out
      "  \"latency\": {\"requests\": %d, \"p50_s\": %.9f, \"p99_s\": %.9f, \
       \"max_s\": %.9f},\n"
      h.Telemetry.hs_count
      (serve_quantile ~q:0.5 h)
      (serve_quantile ~q:0.99 h)
      h.Telemetry.hs_max_s
  | None -> out "  \"latency\": null,\n");
  out
    "  \"batching\": {\"clients\": %d, \"requests\": %d, \"distinct_keys\": \
     %d, \"mc_samples\": %d, \"window_ms\": %.1f, \"gate_threshold\": %.1f, \
     \"seconds\": {\"off\": %.6f, \"on\": %.6f}, \"rps\": {\"off\": %.1f, \
     \"on\": %.1f}, \"speedup\": %.3f, \"identical\": %b, \"batches\": %d, \
     \"size_p50\": %.1f, \"size_max\": %.1f, \"fused_requests\": %d, \
     \"flushes\": {\"window\": %d, \"full\": %d, \"drain\": %d}},\n"
    batch_clients batch_requests_n batch_distinct_keys batch_samples
    batch_window_ms serve_batch_gate batch_off_s batch_on_s batch_rps_off
    batch_rps_on batch_speedup batch_identical batch_count batch_size_p50
    batch_size_max batch_fused batch_flush_window batch_flush_full
    batch_flush_drain;
  out "  \"designs\": [\n";
  List.iteri
    (fun i (name, cold_s, warm_s, ok, _) ->
      out
        "    {\"name\": \"%s\", \"seconds\": {\"cold\": %.6f, \"warm\": \
         %.6f}, \"speedup\": %.3f, \"hit_identical\": %b}%s\n"
        (json_escape name) cold_s warm_s (cold_s /. warm_s) ok
        (if i < List.length rows - 1 then "," else ""))
    rows;
  out "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_serve.json (%d designs)\n" (List.length rows);
  (* The gates are always-on: a cache this central must pay for itself,
     survive a restart and shed exactly what it says it sheds. *)
  if not all_identical then begin
    prerr_endline "FAIL: a warm response diverged from its cold bytes";
    exit 1
  end;
  if speedup < serve_gate_threshold then begin
    Printf.eprintf "FAIL: warm-cache speedup %.2fx below the %.1fx gate\n"
      speedup serve_gate_threshold;
    exit 1
  end;
  if not (restart_all_warm && restart_identical) then begin
    prerr_endline
      "FAIL: a restarted daemon did not serve the snapshot warm and \
       byte-identical";
    exit 1
  end;
  if restart_speedup < serve_gate_threshold then begin
    Printf.eprintf
      "FAIL: warm-after-restart speedup %.2fx below the %.1fx gate\n"
      restart_speedup serve_gate_threshold;
    exit 1
  end;
  if
    overload_shed <> overload_pipelined - overload_capacity
    || overload_tele <> overload_shed
  then begin
    Printf.eprintf
      "FAIL: overload shed %d (telemetry %d), expected exactly %d\n"
      overload_shed overload_tele
      (overload_pipelined - overload_capacity);
    exit 1
  end;
  if not batch_identical then begin
    prerr_endline
      "FAIL: a batched response diverged from its unbatched bytes";
    exit 1
  end;
  if batch_fused = 0 then begin
    prerr_endline "FAIL: the batching daemon never fused a batch";
    exit 1
  end;
  if batch_speedup < serve_batch_gate then begin
    Printf.eprintf
      "FAIL: batch-fusion throughput %.2fx below the %.1fx gate\n"
      batch_speedup serve_batch_gate;
    exit 1
  end

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--mc" argv then begin
    let gate_rows = run_mc_json ~quick:(List.mem "--quick" argv) in
    let rec gate_arg = function
      | "--gate-vr-samples" :: v :: _ -> (
        match float_of_string_opt v with
        | Some t when t > 0. -> Some t
        | Some _ | None ->
          prerr_endline "FAIL: --gate-vr-samples needs a positive ratio";
          exit 2)
      | _ :: rest -> gate_arg rest
      | [] -> None
    in
    match gate_arg argv with
    | Some threshold -> gate_vr_samples ~threshold gate_rows
    | None -> ()
  end
  else if List.mem "--serve" argv then
    run_serve_json ~quick:(List.mem "--quick" argv)
  else if List.mem "--json" argv then begin
    let quick = List.mem "--quick" argv in
    let parallel_result = run_json ~quick in
    let kernel_result = run_kernel_json ~quick in
    if List.mem "--gate-kernel-speedup" argv then
      gate_kernel_speedup kernel_result;
    (* --gate-parallel-speedup takes its threshold as the next argument. *)
    (let rec gate_arg = function
       | "--gate-parallel-speedup" :: v :: _ -> (
         match float_of_string_opt v with
         | Some t when t > 0. -> Some t
         | Some _ | None ->
           prerr_endline
             "FAIL: --gate-parallel-speedup needs a positive threshold";
           exit 2)
       | _ :: rest -> gate_arg rest
       | [] -> None
     in
     match gate_arg argv with
     | Some threshold -> gate_parallel_speedup ~threshold parallel_result
     | None -> ());
    if List.mem "--gate-overhead" argv then gate_overhead ~quick;
    if List.mem "--gate-fault-overhead" argv then gate_fault_overhead ~quick
  end
  else begin
    print_endline "nanodec reproduction harness — Ben Jamaa et al., DAC 2009";
    print_fig5 ();
    print_fig6 ();
    print_fig7 ();
    print_fig8 ();
    print_headlines ();
    print_fig6_multivalued ();
    print_multivalued ();
    print_baseline ();
    print_arranger ();
    print_scaling ();
    print_ablations ();
    run_bechamel ();
    print_endline "\ndone."
  end
