(* Cross-model yield validation.

   Run with: dune exec bench/validate.exe [samples]

   For every design point of the paper's Fig. 7, compares four independent
   estimates of the cave yield Y:

   - analytic   — the paper's closed-form Gaussian window model
   - MC window  — fabrication noise re-sampled through the process
                  simulator, same window criterion
   - MC unique  — full electrical semantics: the wire must be the only
                  conductor of its contact group under its own address
   - MC sense   — analog criterion: selected/sneak current ratio >= 10

   The analytic and MC-window columns must agree within sampling error
   (they share the model); the electrical and analog columns are
   independent implementations and validate the abstraction. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar

let () =
  let samples =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 300
  in
  Printf.printf
    "cross-model cave-yield validation (%d samples per MC column)\n\n"
    samples;
  Printf.printf "%-6s %-4s %-10s %-16s %-16s %-16s\n" "code" "M" "analytic"
    "MC window" "MC unique" "MC sense";
  let rng = Rng.create ~seed:20090726 in
  List.iter
    (fun (code_type, code_length) ->
      let analysis =
        Cave.analyze
          { Cave.default_config with Cave.code_type; code_length }
      in
      let window = Cave.mc_yield_window (Rng.split rng) ~samples analysis in
      let unique =
        Cave.mc_yield_functional (Rng.split rng) ~samples analysis
      in
      let sense = Sensing.mc_sense_yield (Rng.split rng) ~samples analysis in
      let cell e =
        Printf.sprintf "%.3f +/- %.3f" e.Montecarlo.mean
          (2. *. e.Montecarlo.std_error)
      in
      Printf.printf "%-6s %-4d %-10.3f %-16s %-16s %-16s\n"
        (Codebook.name code_type)
        code_length analysis.Cave.yield (cell window) (cell unique)
        (cell sense))
    [
      (Codebook.Tree, 6);
      (Codebook.Tree, 8);
      (Codebook.Tree, 10);
      (Codebook.Balanced_gray, 6);
      (Codebook.Balanced_gray, 8);
      (Codebook.Balanced_gray, 10);
      (Codebook.Hot, 4);
      (Codebook.Hot, 6);
      (Codebook.Hot, 8);
      (Codebook.Arranged_hot, 4);
      (Codebook.Arranged_hot, 6);
      (Codebook.Arranged_hot, 8);
    ];
  print_endline
    "\nanalytic and MC-window share the model and must agree within \
     sampling error;\nMC-unique and MC-sense are independent criteria \
     validating the window abstraction."
