(* PLA demo: computing with a defective nanowire crossbar.

   Run with: dune exec examples/pla_demo.exe

   The paper's crossbars store bits, but the same fabric computes (its
   refs [5], [10]): wired-NOR planes over the crosspoints implement any
   two-level logic.  This demo programs a full adder onto the working
   wires of a sampled crossbar — defect-aware placement on top of the
   MSPT decoder — and prints its truth table, computed entirely through
   simulated crosspoint reads. *)

open Nanodec_numerics
open Nanodec_crossbar

let v i = { Pla.input = i; positive = true }
let nv i = { Pla.input = i; positive = false }

(* sum = a xor b xor cin; carry = ab + a cin + b cin. *)
let sum_sop =
  [
    [ v 0; nv 1; nv 2 ];
    [ nv 0; v 1; nv 2 ];
    [ nv 0; nv 1; v 2 ];
    [ v 0; v 1; v 2 ];
  ]

let carry_sop = [ [ v 0; v 1 ]; [ v 0; v 2 ]; [ v 1; v 2 ] ]

let () =
  print_endline "== full adder on a defective 64x64 crossbar ==\n";
  let config =
    {
      Array_sim.cave = Cave.default_config;
      raw_bits = 64 * 64;
    }
  in
  let memory = Memory.create (Rng.create ~seed:7) config in
  Printf.printf "crossbar: %dx%d, %d usable crosspoints (%.0f%% yield)\n"
    (Memory.n_rows memory) (Memory.n_cols memory)
    (Memory.usable_crosspoints memory)
    (100. *. Memory.realized_yield memory);
  match Pla.program memory ~inputs:3 ~outputs:[ sum_sop; carry_sop ] with
  | Error (`Not_enough_rows (need, have)) ->
    Printf.printf "placement failed: need %d rows, have %d\n" need have
  | Error (`Not_enough_columns (need, have)) ->
    Printf.printf "placement failed: need %d columns, have %d\n" need have
  | Ok pla ->
    Printf.printf
      "placed %d shared product terms on physical rows %s\n\n"
      (Pla.n_terms pla)
      (String.concat ", " (List.map string_of_int (Pla.rows_used pla)));
    print_endline " a b cin | sum carry   (expected)";
    let all_correct = ref true in
    List.iteri
      (fun bits row ->
        let a = bits land 1
        and b = (bits lsr 1) land 1
        and cin = (bits lsr 2) land 1 in
        let expected_sum = (a + b + cin) land 1
        and expected_carry = if a + b + cin >= 2 then 1 else 0 in
        let got_sum = if row.(0) then 1 else 0
        and got_carry = if row.(1) then 1 else 0 in
        if got_sum <> expected_sum || got_carry <> expected_carry then
          all_correct := false;
        Printf.printf " %d %d  %d  |  %d    %d       (%d %d)\n" a b cin got_sum
          got_carry expected_sum expected_carry)
      (Pla.truth_table pla);
    Printf.printf "\nfull adder correct on all 8 input combinations: %b\n"
      !all_correct
