(* Memory demo: store data in a simulated defective crossbar.

   Run with: dune exec examples/memory_demo.exe

   Builds one concrete fabrication outcome of the paper's 16 kB crossbar
   (defect map sampled from the analytic wire probabilities), first with
   the naive tree-code decoder and then with the optimized balanced-Gray
   decoder, and shows what a memory controller sees: raw faults on
   defective wires, the remapped dense logical address space, and the
   capacity difference the better decoder buys. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar

let build_memory ~seed code_type code_length =
  let cave =
    { Cave.default_config with Cave.code_type; code_length }
  in
  let config = { Array_sim.cave; raw_bits = 16 * 1024 * 8 } in
  Memory.create (Rng.create ~seed) config

let describe name memory =
  Printf.printf "%s: %dx%d crosspoints, %d usable (%.1f%% realized yield)\n"
    name (Memory.n_rows memory) (Memory.n_cols memory)
    (Memory.usable_crosspoints memory)
    (100. *. Memory.realized_yield memory);
  (* First 64 wires of the row layer, as a defect map. *)
  let states = Array.sub (Memory.row_states memory) 0 64 in
  Format.printf "  row layer (first 64 wires): %a@." Defect_map.pp_row states

let () =
  print_endline "== crossbar memory demo: one fabrication outcome ==\n";
  let tree_memory = build_memory ~seed:2009 Codebook.Tree 6 in
  let bgc_memory = build_memory ~seed:2009 Codebook.Balanced_gray 10 in
  describe "tree code, M=6     " tree_memory;
  describe "balanced Gray, M=10" bgc_memory;

  print_endline "\n== raw physical access sees the defects ==";
  let demo_write memory =
    (* Find one defective row to demonstrate the fault. *)
    let states = Memory.row_states memory in
    let bad =
      let rec find i =
        if i >= Array.length states then None
        else
          match states.(i) with
          | Defect_map.Working -> find (i + 1)
          | Defect_map.Removed_by_layout | Defect_map.Failed_variability ->
            Some i
      in
      find 0
    in
    match bad with
    | None -> print_endline "  (no defective row in this sample)"
    | Some row ->
      (match Memory.write memory ~row ~col:0 true with
      | Error `Defective_row ->
        Printf.printf "  write to physical row %d: Error Defective_row\n" row
      | Error (`Defective_column | `Out_of_range) | Ok () ->
        print_endline "  unexpected result")
  in
  demo_write bgc_memory;

  print_endline "\n== the remap layer hides them ==";
  let remap = Remap.build bgc_memory in
  Printf.printf "logical capacity: %d bits (%d bytes) of %d raw\n"
    (Remap.capacity_bits remap)
    (Remap.capacity_bytes remap)
    (Memory.n_rows bgc_memory * Memory.n_cols bgc_memory);
  let message =
    "Silicon nanowires decoded with balanced Gray codes - DAC 2009."
  in
  Remap.store_string remap message;
  let readback = Remap.load_string remap ~length:(String.length message) in
  Printf.printf "stored   : %s\nread back: %s\nround trip intact: %b\n" message
    readback
    (String.equal message readback);

  print_endline "\n== ECC against crosspoint faults ==";
  let ecc_payload = "protected payload" in
  Ecc.store remap ecc_payload;
  (* Sabotage one stored bit per encoded byte: SECDED repairs them all. *)
  let rng = Rng.create ~seed:77 in
  for i = 0 to (2 * String.length ecc_payload) - 1 do
    let bit = (8 * i) + Rng.int rng 8 in
    Remap.set_bit remap bit (not (Remap.get_bit remap bit))
  done;
  let recovered, corrected, uncorrectable =
    Ecc.load remap ~length:(String.length ecc_payload)
  in
  Printf.printf
    "flipped %d stored bits; ECC corrected %d, failed %d; payload intact: %b\n"
    (2 * String.length ecc_payload)
    corrected uncorrectable
    (String.equal recovered ecc_payload);

  print_endline "\n== capacity comparison ==";
  let capacity m = Remap.capacity_bits (Remap.build m) in
  let tree_bits = capacity tree_memory
  and bgc_bits = capacity bgc_memory in
  Printf.printf
    "tree code M=6 : %6d usable bits\nbalanced M=10 : %6d usable bits \
     (%.1fx)\n"
    tree_bits bgc_bits
    (float_of_int bgc_bits /. float_of_int tree_bits)
