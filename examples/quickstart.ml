(* Quickstart: design the decoder of a 16 kB MSPT nanowire crossbar memory.

   Run with: dune exec examples/quickstart.exe

   The library's entry point is Nanodec.Design: pick a code family and a
   code length, and [evaluate] returns everything the DAC'09 paper reports
   — fabrication complexity, decoder variability, crossbar yield and area
   per stored bit. *)

open Nanodec_codes
open Nanodec

let () =
  print_endline "== nanodec quickstart: a 16 kB crossbar memory ==\n";

  (* 1. A naive design: binary tree code, minimal length. *)
  let naive = Design.spec ~code_type:Codebook.Tree ~code_length:6 () in
  let naive_report = Design.evaluate naive in
  print_endline "naive decoder (tree code, M = 6):";
  Format.printf "%a@.@." Design.pp_report naive_report;

  (* 2. The paper's optimized design: balanced Gray code, M = 10. *)
  let optimized =
    Design.spec ~code_type:Codebook.Balanced_gray ~code_length:10 ()
  in
  let optimized_report = Design.evaluate optimized in
  print_endline "optimized decoder (balanced Gray code, M = 10):";
  Format.printf "%a@.@." Design.pp_report optimized_report;

  (* 3. What did the optimization buy? *)
  let yield_gain =
    optimized_report.Design.crossbar_yield
    /. naive_report.Design.crossbar_yield
  in
  let area_saving =
    1. -. (optimized_report.Design.bit_area /. naive_report.Design.bit_area)
  in
  Printf.printf
    "optimizing the code type and length multiplied the usable bits by \
     %.1fx\nand cut the area per bit by %.0f%% (paper: ~51%% from length \
     alone,\nplus the optimized code families).\n\n"
    yield_gain (100. *. area_saving);

  (* 4. Or let the optimizer search the design space for you. *)
  let best = Optimizer.best Optimizer.Min_bit_area in
  print_endline "optimizer pick (minimum bit area over all families):";
  Format.printf "%a@." Design.pp_report best
