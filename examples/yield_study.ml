(* Yield study: sensitivity of the crossbar yield to the platform
   parameters, plus a Monte-Carlo cross-check of the analytic model.

   Run with: dune exec examples/yield_study.exe

   This is the ablation the DESIGN.md calls out: how do the two calibrated
   parameters (addressability window, pad overlay margin) and the two
   physical noise sources (per-implant sigma_T, intrinsic sigma_0) move
   the yield?  And does the closed-form Gaussian model agree with brute
   Monte-Carlo over the process simulator? *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_crossbar

let yield_with update =
  let cave = update Cave.default_config in
  (Cave.analyze cave).Cave.yield

let row fmt = Printf.printf fmt

let () =
  print_endline "== yield sensitivity (balanced Gray, M = 10, N = 20) ==\n";

  row "sigma_T sweep (per-implant V_T noise):\n";
  List.iter
    (fun sigma_t ->
      row "  sigma_T = %3.0f mV   Y = %.3f\n" (1000. *. sigma_t)
        (yield_with (fun c -> { c with Cave.sigma_t })))
    [ 0.01; 0.03; 0.05; 0.08; 0.12 ];

  row "\nsigma_0 sweep (intrinsic region variability):\n";
  List.iter
    (fun sigma_base ->
      row "  sigma_0 = %3.0f mV   Y = %.3f\n" (1000. *. sigma_base)
        (yield_with (fun c -> { c with Cave.sigma_base })))
    [ 0.00; 0.05; 0.10; 0.15; 0.20 ];

  row "\naddressability window sweep (fraction of level separation):\n";
  List.iter
    (fun margin_fraction ->
      row "  margin = %.2f      Y = %.3f\n" margin_fraction
        (yield_with (fun c -> { c with Cave.margin_fraction })))
    [ 0.2; 0.3; 0.42; 0.5 ];

  row "\npad overlay sweep (tree code, M = 6 — geometry-limited):\n";
  List.iter
    (fun overlap ->
      let y =
        yield_with (fun c ->
            {
              c with
              Cave.code_type = Codebook.Tree;
              code_length = 6;
              rules = { c.Cave.rules with Geometry.pad_overlap = overlap };
            })
      in
      row "  overlay = %2.0f nm   Y = %.3f\n" overlap y)
    [ 0.; 8.; 16.; 24. ];

  print_endline "\n== Monte-Carlo cross-check of the analytic yield ==\n";
  let rng = Rng.create ~seed:2009 in
  List.iter
    (fun (ct, m) ->
      let analysis =
        Cave.analyze
          { Cave.default_config with Cave.code_type = ct; code_length = m }
      in
      let mc = Cave.mc_yield_window (Rng.split rng) ~samples:300 analysis in
      let functional =
        Cave.mc_yield_functional (Rng.split rng) ~samples:300 analysis
      in
      Printf.printf
        "%-4s M=%-2d  analytic Y = %.3f   MC(window) = %.3f +/- %.3f   \
         MC(electrical) = %.3f +/- %.3f\n"
        (Codebook.name ct) m analysis.Cave.yield mc.Montecarlo.mean
        (2. *. mc.Montecarlo.std_error)
        functional.Montecarlo.mean
        (2. *. functional.Montecarlo.std_error))
    [
      (Codebook.Tree, 8);
      (Codebook.Gray, 8);
      (Codebook.Balanced_gray, 8);
      (Codebook.Balanced_gray, 10);
    ];
  print_endline
    "\nthe window model (the paper's criterion) matches its own Monte-Carlo \
     re-simulation;\nthe full electrical-uniqueness criterion tracks it \
     closely, validating the proxy.";

  print_endline "\n== analog sense-margin criterion (independent model) ==\n";
  List.iter
    (fun (ct, m) ->
      let analysis =
        Cave.analyze
          { Cave.default_config with Cave.code_type = ct; code_length = m }
      in
      let sense =
        Sensing.mc_sense_yield (Rng.split rng) ~samples:150 analysis
      in
      Printf.printf
        "%-4s M=%-2d  window Y = %.3f   sense-ratio Y = %.3f +/- %.3f\n"
        (Codebook.name ct) m analysis.Cave.yield sense.Montecarlo.mean
        (2. *. sense.Montecarlo.std_error))
    [ (Codebook.Tree, 8); (Codebook.Balanced_gray, 8) ];
  print_endline
    "\na conductance-based selected/sneak current ratio criterion lands in \
     the same band\nas the paper's window abstraction."
