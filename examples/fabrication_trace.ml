(* Fabrication trace: the paper's worked examples (Section 4) end to end.

   Run with: dune exec examples/fabrication_trace.exe

   Walks the exact matrices of Examples 1-6: pattern P, threshold voltages
   V, final doping D, step doping S, fabrication complexity Phi and
   variability Sigma — first for the tree-code pattern, then for the Gray
   variant that the paper uses to demonstrate the savings.  Finally runs
   the process simulator to show the individual lithography/doping passes
   and verify that executing them rebuilds D. *)

open Nanodec_codes
open Nanodec_numerics
open Nanodec_mspt

let pattern_of rows = Pattern.of_words (List.map (Word.of_string ~radix:3) rows)

(* The paper's example mapping: digits 0,1,2 <-> V_T 0.1,0.3,0.5 V <->
   doping 2,4,9 x 10^18 cm^-3. *)
let vt_of_digit d = 0.1 +. (0.2 *. float_of_int d)

let show_pattern name p =
  Format.printf "%s =@.%a@.@." name Pattern.pp p

let show_f name m = Format.printf "%s =@.%a@.@." name Fmatrix.pp m
let show_i name m = Format.printf "%s =@.%a@.@." name Imatrix.pp m

let analyse label p =
  Printf.printf "=== %s ===\n" label;
  show_pattern "pattern matrix P" p;
  let v =
    Imatrix.map_to_fmatrix vt_of_digit (Pattern.to_matrix p)
  in
  show_f "threshold voltages V [V]" v;
  let d, s = Doping.of_pattern ~h:Doping.paper_example_h p in
  show_f "final doping D [1e18 cm^-3]" d;
  show_f "step doping S [1e18 cm^-3]" s;
  let phi = Complexity.phi_per_step p in
  print_string "phi per step:";
  Array.iter (Printf.printf " %d") phi;
  Printf.printf "   => Phi = %d\n" (Complexity.total p);
  show_i "\ndoping-operation counts nu" (Variability.nu_matrix p);
  Printf.printf "||Sigma||_1 = %.0f sigma_T^2\n\n"
    (Variability.sigma_norm1 ~sigma_t:1. p);
  (d, s)

let () =
  print_endline
    "== the paper's worked examples: N = 3 nanowires, M = 4 regions, \
     ternary logic ==\n";

  (* Examples 1-4: tree-code pattern. *)
  let tree = pattern_of [ "0121"; "0220"; "1012" ] in
  let d, s = analyse "tree-code pattern (Examples 1-4)" tree in

  (* Example 5-6: the Gray variant avoids the forbidden transition
     0220 => 1012 (4 digits change) by using 1210 instead (2 digits). *)
  let gray = pattern_of [ "0121"; "0220"; "1210" ] in
  let _ = analyse "Gray variant (Examples 5-6)" gray in

  print_endline "== executing the fabrication on a virtual half cave ==\n";
  let passes = Process.passes_of_step_matrix s in
  Printf.printf "the tree-code pattern needs %d lithography/doping passes:\n"
    (List.length passes);
  List.iteri
    (fun i pass ->
      let regions =
        List.filteri (fun j _ -> pass.Process.mask.(j)) [ "0"; "1"; "2"; "3" ]
      in
      Printf.printf "  pass %d: after defining wire %d, implant %+g e18 into \
                     regions {%s}\n"
        (i + 1) pass.Process.after_wire pass.Process.dose
        (String.concat "," regions))
    passes;
  let wafer = Process.run ~n_wires:3 ~n_regions:4 passes in
  Printf.printf "\nre-running the passes reproduces D exactly: %b\n"
    (Fmatrix.approx_equal ~eps:1e-9 wafer d);
  let hits = Process.hit_counts ~n_wires:3 ~n_regions:4 passes in
  Printf.printf "and the per-region implant counts equal nu: %b\n"
    (Imatrix.equal hits (Variability.nu_matrix tree));

  print_endline "\n== what that means in fab time ==\n";
  let show label pattern =
    Format.printf "%-12s %a@." label Cost_model.pp
      (Cost_model.of_pattern ~h:Doping.paper_example_h pattern)
  in
  show "tree order:" tree;
  show "Gray order:" gray;
  Printf.printf "relative time saving: %.1f%%\n"
    (100. *. Cost_model.compare_patterns ~h:Doping.paper_example_h tree gray);

  print_endline
    "\nsummary: rearranging the same three code words in Gray order cut \
     Phi from 9 to 7 passes\nand ||Sigma||_1 from 22 to 18 sigma_T^2 — \
     the mechanism behind the paper's 17% / 18% headlines."
