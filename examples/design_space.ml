(* Design-space explorer: every decoder design at a glance.

   Run with: dune exec examples/design_space.exe

   Sweeps all five code families over lengths 4..12, prints the report
   table, renders the yield-vs-bit-area plane as an ASCII scatter with the
   Pareto front marked, and shows the per-objective winners. *)

open Nanodec
open Nanodec_codes
open Nanodec_crossbar

let () =
  print_endline "== full design-space sweep (paper platform) ==\n";
  let reports = Optimizer.sweep () in
  print_endline Design.report_header;
  List.iter (fun r -> print_endline (Design.report_row r)) reports;

  let front = Optimizer.pareto_yield_area reports in
  let on_front r = List.memq r front in

  (* ASCII scatter: x = bit area (log-ish bins), y = crossbar yield. *)
  print_endline "\ncrossbar yield vs bit area ('o' design, '#' Pareto front):";
  let width = 64
  and height = 16 in
  let min_area =
    List.fold_left (fun acc r -> Float.min acc r.Design.bit_area) infinity reports
  in
  let max_area =
    List.fold_left (fun acc r -> Float.max acc r.Design.bit_area) 0. reports
  in
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun r ->
      let x =
        int_of_float
          (log (r.Design.bit_area /. min_area)
          /. log (max_area /. min_area)
          *. float_of_int (width - 1))
      in
      let y =
        height - 1 - int_of_float (r.Design.crossbar_yield *. float_of_int (height - 1))
      in
      let y = Stdlib.max 0 (Stdlib.min (height - 1) y)
      and x = Stdlib.max 0 (Stdlib.min (width - 1) x) in
      grid.(y).(x) <- (if on_front r then '#' else 'o'))
    reports;
  Array.iteri
    (fun row line ->
      let yield_label =
        100. *. float_of_int (height - 1 - row) /. float_of_int (height - 1)
      in
      Printf.printf "%5.0f%% |%s|\n" yield_label (String.init width (Array.get line)))
    grid;
  Printf.printf "       %-30.0f%30.0f nm^2/bit (log scale)\n" min_area max_area;

  print_endline "\nPareto front (no design is both higher-yield and denser):";
  List.iter (fun r -> print_endline ("  " ^ Design.report_row r)) front;

  print_endline "\nper-objective winners:";
  List.iter
    (fun (label, objective) ->
      let w = Optimizer.best objective in
      let c = w.Design.spec.Design.cave in
      Printf.printf "  %-20s %s M=%d  (Y^2=%.3f, %.0f nm^2/bit, Phi=%d)\n"
        label
        (Codebook.name c.Cave.code_type)
        c.Cave.code_length w.Design.crossbar_yield w.Design.bit_area
        w.Design.phi)
    [
      ("max yield:", Optimizer.Max_yield);
      ("min bit area:", Optimizer.Min_bit_area);
      ("min fabrication:", Optimizer.Min_fabrication);
      ("min variability:", Optimizer.Min_variability);
    ]
