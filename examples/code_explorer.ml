(* Code explorer: the five encoding schemes of the paper side by side.

   Run with: dune exec examples/code_explorer.exe

   For each family this prints the word sequence a half cave would be
   patterned with, the transitions between successive nanowires (what the
   Gray arrangements minimise), the per-digit transition spectrum (what
   the balanced Gray code equalises) and a functional check that the
   decoder can address every wire uniquely. *)

open Nanodec_codes
open Nanodec_crossbar

let explore ~radix ~length ~count code_type =
  let omega = Codebook.space_size ~radix ~length code_type in
  Printf.printf "\n--- %s (n=%d, M=%d, Omega=%d) ---\n"
    (Codebook.long_name code_type)
    radix length omega;
  let words = Codebook.sequence ~radix ~length ~count code_type in
  let total_transitions = ref 0 in
  List.iteri
    (fun i w ->
      let note =
        if i = 0 then ""
        else begin
          let t = Word.hamming_distance (List.nth words (i - 1)) w in
          total_transitions := !total_transitions + t;
          Printf.sprintf "  <- %d digit(s) changed" t
        end
      in
      Printf.printf "  wire %2d: %s%s\n" i (Word.to_string w) note)
    words;
  Printf.printf "  total transitions over %d wires: %d\n" count
    !total_transitions;
  let spectrum = Balanced_gray.transition_spectrum ~cyclic:false words in
  print_string "  per-digit spectrum:";
  Array.iter (Printf.printf " %d") spectrum;
  Printf.printf "\n  balanced (spread <= 2): %b\n"
    (Balanced_gray.is_balanced ~cyclic:false words);
  (* Functional check: under its own address, each wire must be the only
     conductor of the group. *)
  let group = Codebook.sequence ~radix ~length ~count:omega code_type in
  Printf.printf "  uniquely addressable: %b\n"
    (Addressing.uniquely_addressable group)

let () =
  print_endline "== code explorer: binary families, M = 8, first 10 wires ==";
  List.iter
    (fun ct -> explore ~radix:2 ~length:8 ~count:10 ct)
    Codebook.all_types;

  print_endline "\n== why reflection matters ==";
  let unreflected = Tree_code.words ~radix:2 ~base_len:4 ~count:16 in
  Printf.printf
    "un-reflected binary counting code uniquely addressable: %b\n"
    (Addressing.uniquely_addressable unreflected);
  Printf.printf "after reflection: %b\n"
    (Addressing.uniquely_addressable
       (Tree_code.reflected_words ~radix:2 ~base_len:4 ~count:16));

  print_endline "\n== multi-valued logic: ternary Gray code, M = 6 ==";
  explore ~radix:3 ~length:6 ~count:9 Codebook.Gray
